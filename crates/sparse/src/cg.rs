//! Preconditioned conjugate gradient.
//!
//! The transient engine solves `(G + C/Δt) v = b_k` for hundreds of right
//! hand sides with a constant matrix; CG with an IC(0) preconditioner and a
//! warm start from the previous time step keeps each solve to a handful of
//! iterations.

use crate::csr::CsrMatrix;
use crate::error::{SolveError, SparseResult};
use crate::vecops::{axpy, dot, norm2, xpby};

/// A symmetric preconditioner: computes `z = M⁻¹ r`.
pub trait Preconditioner {
    /// Applies the preconditioner, writing the result into `z`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// No preconditioning (`M = I`).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioning: `z_i = r_i / A_ii`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the matrix diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] if any diagonal entry is
    /// not strictly positive.
    pub fn new(a: &CsrMatrix) -> SparseResult<JacobiPreconditioner> {
        let diag = a.diagonal();
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 {
                return Err(SolveError::NotPositiveDefinite { row: i, pivot: d });
            }
        }
        Ok(JacobiPreconditioner { inv_diag: diag.into_iter().map(|d| 1.0 / d).collect() })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Options controlling the CG iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Relative residual target `‖b − A x‖ / ‖b‖`.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    /// `tolerance = 1e-10`, `max_iterations = 10_000` — tight enough that the
    /// "commercial tool" ground truth is effectively exact.
    fn default() -> CgOptions {
        CgOptions { tolerance: 1e-10, max_iterations: 10_000 }
    }
}

/// Result of a converged CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Solves `A x = b` from a zero initial guess.
///
/// # Errors
///
/// Returns [`SolveError::NotConverged`] if the iteration budget is exhausted
/// and [`SolveError::DimensionMismatch`] for incompatible shapes.
pub fn solve<P: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    pre: &P,
    opts: &CgOptions,
) -> SparseResult<CgSolution> {
    let mut x = vec![0.0; b.len()];
    solve_warm(a, b, &mut x, pre, opts).map(|(iterations, residual)| CgSolution {
        x,
        iterations,
        residual,
    })
}

/// Solves `A x = b` starting from the caller's initial guess, overwriting
/// `x` with the solution. Returns `(iterations, relative_residual)`.
///
/// The warm start is what makes the transient loop fast: consecutive time
/// steps have nearly identical voltage profiles.
///
/// # Errors
///
/// Returns [`SolveError::NotConverged`] if the iteration budget is exhausted
/// and [`SolveError::DimensionMismatch`] for incompatible shapes.
pub fn solve_warm<P: Preconditioner>(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    pre: &P,
    opts: &CgOptions,
) -> SparseResult<(usize, f64)> {
    if a.n_rows() != a.n_cols() || a.n_rows() != b.len() || b.len() != x.len() {
        return Err(SolveError::DimensionMismatch {
            detail: format!(
                "cg: A is {}x{}, b has {}, x has {}",
                a.n_rows(),
                a.n_cols(),
                b.len(),
                x.len()
            ),
        });
    }
    let n = b.len();
    let norm_b = norm2(b);
    if norm_b == 0.0 {
        x.iter_mut().for_each(|v| *v = 0.0);
        return Ok((0, 0.0));
    }

    // r = b - A x
    let mut r = vec![0.0; n];
    a.mul_vec_into(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let mut resid = norm2(&r) / norm_b;
    if resid <= opts.tolerance {
        return Ok((0, resid));
    }

    let mut z = vec![0.0; n];
    pre.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 1..=opts.max_iterations {
        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Indefinite direction — matrix is not SPD.
            return Err(SolveError::NotPositiveDefinite { row: it, pivot: pap });
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        resid = norm2(&r) / norm_b;
        if resid <= opts.tolerance {
            return Ok((it, resid));
        }
        pre.apply(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(&z, beta, &mut p);
    }
    Err(SolveError::NotConverged { iterations: opts.max_iterations, residual: resid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::ichol::IncompleteCholesky;
    use proptest::prelude::*;

    fn grid_laplacian(n: usize, shift: f64) -> CsrMatrix {
        let idx = |r: usize, c: usize| r * n + c;
        let mut coo = CooMatrix::new(n * n, n * n);
        for r in 0..n {
            for c in 0..n {
                coo.push(idx(r, c), idx(r, c), shift);
                if r + 1 < n {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r + 1, c)), 1.0);
                }
                if c + 1 < n {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r, c + 1)), 1.0);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn converges_on_grid_with_all_preconditioners() {
        let a = grid_laplacian(8, 0.1);
        let x_true: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let b = a.mul_vec(&x_true);
        let opts = CgOptions::default();

        for (name, sol) in [
            ("identity", solve(&a, &b, &IdentityPreconditioner, &opts).unwrap()),
            ("jacobi", solve(&a, &b, &JacobiPreconditioner::new(&a).unwrap(), &opts).unwrap()),
            ("ic0", solve(&a, &b, &IncompleteCholesky::factor(&a).unwrap(), &opts).unwrap()),
        ] {
            for (xi, ti) in sol.x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-6, "{name}: {xi} vs {ti}");
            }
        }
    }

    #[test]
    fn ic0_converges_faster_than_identity() {
        let a = grid_laplacian(12, 0.05);
        let b: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let opts = CgOptions { tolerance: 1e-10, max_iterations: 5000 };
        let plain = solve(&a, &b, &IdentityPreconditioner, &opts).unwrap();
        let ic = solve(&a, &b, &IncompleteCholesky::factor(&a).unwrap(), &opts).unwrap();
        assert!(
            ic.iterations < plain.iterations,
            "IC(0) ({}) should beat identity ({})",
            ic.iterations,
            plain.iterations
        );
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = grid_laplacian(10, 0.1);
        let b: Vec<f64> = (0..a.n_rows()).map(|i| (i as f64).sin()).collect();
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let opts = CgOptions::default();
        let cold = solve(&a, &b, &pre, &opts).unwrap();
        // Perturb b slightly; warm-start from the previous solution.
        let b2: Vec<f64> = b.iter().map(|v| v * 1.001).collect();
        let mut x = cold.x.clone();
        let (iters, _) = solve_warm(&a, &b2, &mut x, &pre, &opts).unwrap();
        assert!(iters <= cold.iterations, "warm {iters} vs cold {}", cold.iterations);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = grid_laplacian(3, 1.0);
        let sol = solve(&a, &vec![0.0; 9], &IdentityPreconditioner, &CgOptions::default()).unwrap();
        assert_eq!(sol.x, vec![0.0; 9]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let a = grid_laplacian(8, 0.01);
        // Not an eigenvector, so CG cannot terminate exactly in 2 steps.
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() + 2.0).collect();
        let opts = CgOptions { tolerance: 0.0, max_iterations: 2 };
        assert!(matches!(
            solve(&a, &b, &IdentityPreconditioner, &opts),
            Err(SolveError::NotConverged { iterations: 2, .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = grid_laplacian(2, 1.0);
        assert!(matches!(
            solve(&a, &[1.0, 2.0], &IdentityPreconditioner, &CgOptions::default()),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_spd_systems_converge(n in 2usize..20, seed in 0u64..200) {
            use rand::{Rng as _, SeedableRng as _};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            // Random sparse SPD: diagonally dominant symmetric.
            let mut coo = CooMatrix::new(n, n);
            let mut row_sums = vec![0.0; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.3) {
                        let g = rng.gen_range(0.1..2.0);
                        coo.push(i, j, -g);
                        coo.push(j, i, -g);
                        row_sums[i] += g;
                        row_sums[j] += g;
                    }
                }
            }
            for i in 0..n {
                coo.push(i, i, row_sums[i] + rng.gen_range(0.1..1.0));
            }
            let a = coo.to_csr();
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b = a.mul_vec(&x_true);
            let pre = IncompleteCholesky::factor(&a).unwrap();
            let sol = solve(&a, &b, &pre, &CgOptions::default()).unwrap();
            for (xi, ti) in sol.x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-6);
            }
        }
    }
}
