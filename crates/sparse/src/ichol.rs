//! Zero-fill incomplete Cholesky — IC(0) — preconditioner.
//!
//! For the M-matrices produced by PDN stamping, IC(0) never breaks down and
//! reduces conjugate-gradient iteration counts by an order of magnitude
//! compared to Jacobi, which is what makes repeated transient solves (one per
//! time stamp, paper §2) affordable.

use crate::cg::Preconditioner;
use crate::csr::CsrMatrix;
use crate::error::{SolveError, SparseResult};

/// The IC(0) factor `L` (lower triangular, same sparsity as the lower
/// triangle of `A`), applied as the preconditioner `M⁻¹ = (L Lᵀ)⁻¹`.
///
/// # Example
///
/// ```
/// use pdn_sparse::coo::CooMatrix;
/// use pdn_sparse::ichol::IncompleteCholesky;
/// use pdn_sparse::cg::Preconditioner;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0);
/// coo.push(1, 1, 9.0);
/// let a = coo.to_csr();
/// // For a diagonal matrix, IC(0) is exact: M⁻¹ r = A⁻¹ r.
/// let pre = IncompleteCholesky::factor(&a).unwrap();
/// let mut z = vec![0.0; 2];
/// pre.apply(&[4.0, 9.0], &mut z);
/// assert_eq!(z, vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    // L in CSR (row-major, columns ascending, diagonal last in each row).
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
    // Lᵀ in CSR (i.e. L in CSC), for the backward solve.
    t_indptr: Vec<usize>,
    t_indices: Vec<usize>,
    t_values: Vec<f64>,
}

impl IncompleteCholesky {
    /// Computes the IC(0) factorization of a symmetric positive-definite
    /// matrix. Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] on pivot breakdown and
    /// [`SolveError::DimensionMismatch`] for non-square input.
    pub fn factor(a: &CsrMatrix) -> SparseResult<IncompleteCholesky> {
        if a.n_rows() != a.n_cols() {
            return Err(SolveError::DimensionMismatch {
                detail: format!("ichol of {}x{} matrix", a.n_rows(), a.n_cols()),
            });
        }
        let n = a.n_rows();
        // Build the lower-triangle sparsity row by row; values computed with
        // the standard row-oriented IC(0) update:
        //   L[i][j] = (A[i][j] - Σ_k<j L[i][k] L[j][k]) / L[j][j]
        //   L[i][i] = sqrt(A[i][i] - Σ_k<i L[i][k]²)
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        indptr.push(0);

        // For the dot products we need fast access to "row j of L" for j < i;
        // rows are finalized in order, so we can scan them via indptr.
        for i in 0..n {
            let (a_cols, a_vals) = a.row(i);
            let row_start = indices.len();
            for (&j, &aij) in a_cols.iter().zip(a_vals) {
                if j > i {
                    break;
                }
                // Σ_k L[i][k] L[j][k] for k < j: merge-scan the two rows.
                let mut s = 0.0;
                {
                    let (mut p, mut q) = (row_start, indptr[j]);
                    let p_end = indices.len();
                    let q_end = if j == i { indices.len() } else { indptr[j + 1] };
                    while p < p_end && q < q_end {
                        let (cp, cq) = (indices[p], indices[q]);
                        if cp >= j || cq >= j {
                            break;
                        }
                        match cp.cmp(&cq) {
                            std::cmp::Ordering::Less => p += 1,
                            std::cmp::Ordering::Greater => q += 1,
                            std::cmp::Ordering::Equal => {
                                s += values[p] * values[q];
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                }
                if j == i {
                    let pivot = aij - s;
                    if pivot <= 0.0 {
                        pdn_core::telemetry::counter_add("sparse.ichol.breakdowns", 1);
                        return Err(SolveError::NotPositiveDefinite { row: i, pivot });
                    }
                    indices.push(i);
                    values.push(pivot.sqrt());
                } else {
                    // Diagonal of row j is its last stored entry.
                    let ljj = values[indptr[j + 1] - 1];
                    indices.push(j);
                    values.push((aij - s) / ljj);
                }
            }
            indptr.push(indices.len());
        }

        // Transpose L for the backward substitution.
        let nnz = values.len();
        let mut t_indptr = vec![0usize; n + 1];
        for &c in &indices {
            t_indptr[c + 1] += 1;
        }
        for i in 0..n {
            t_indptr[i + 1] += t_indptr[i];
        }
        let mut t_indices = vec![0usize; nnz];
        let mut t_values = vec![0.0; nnz];
        let mut next = t_indptr.clone();
        for r in 0..n {
            for k in indptr[r]..indptr[r + 1] {
                let c = indices[k];
                t_indices[next[c]] = r;
                t_values[next[c]] = values[k];
                next[c] += 1;
            }
        }

        pdn_core::telemetry::counter_add("sparse.ichol.factorizations", 1);
        Ok(IncompleteCholesky { n, indptr, indices, values, t_indptr, t_indices, t_values })
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `L Lᵀ z = r` (forward then backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the factor size.
    pub fn solve_into(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "solve: r length mismatch");
        assert_eq!(z.len(), self.n, "solve: z length mismatch");
        // Forward: L y = r, row-oriented; diagonal is last entry of each row.
        for i in 0..self.n {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            let mut s = r[i];
            for k in lo..hi - 1 {
                s -= self.values[k] * z[self.indices[k]];
            }
            z[i] = s / self.values[hi - 1];
        }
        // Backward: Lᵀ x = y, using the transposed (upper-triangular) factor;
        // in Lᵀ's row i, the diagonal is the *first* entry.
        for i in (0..self.n).rev() {
            let lo = self.t_indptr[i];
            let hi = self.t_indptr[i + 1];
            let mut s = z[i];
            for k in lo + 1..hi {
                s -= self.t_values[k] * z[self.t_indices[k]];
            }
            z[i] = s / self.t_values[lo];
        }
    }

    /// Solves `L Lᵀ Z = R` for `k` interleaved right-hand sides
    /// (`r[i * k + t]` is entry `i` of vector `t`), streaming the factor
    /// once per row for all vectors. Per vector, the operations match
    /// [`solve_into`] exactly, so each column is bitwise identical to a
    /// separate single-vector solve.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or lengths are not `dim() * k`.
    pub fn solve_multi_into(&self, r: &[f64], z: &mut [f64], k: usize) {
        assert!(k > 0, "solve_multi: k must be positive");
        assert_eq!(r.len(), self.n * k, "solve_multi: r length mismatch");
        assert_eq!(z.len(), self.n * k, "solve_multi: z length mismatch");
        // Common batch widths get a compile-time k so the running block
        // stays in registers across each row's update loop.
        match k {
            2 => self.solve_multi_fixed::<2>(r, z),
            3 => self.solve_multi_fixed::<3>(r, z),
            4 => self.solve_multi_fixed::<4>(r, z),
            8 => self.solve_multi_fixed::<8>(r, z),
            _ => self.solve_multi_generic(r, z, k),
        }
    }

    fn solve_multi_generic(&self, r: &[f64], z: &mut [f64], k: usize) {
        let mut s = vec![0.0f64; k];
        // Forward: L Y = R, row-oriented; diagonal is last entry per row.
        for i in 0..self.n {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            s.copy_from_slice(&r[i * k..(i + 1) * k]);
            for p in lo..hi - 1 {
                let v = self.values[p];
                let zb = &z[self.indices[p] * k..][..k];
                for t in 0..k {
                    s[t] -= v * zb[t];
                }
            }
            let d = self.values[hi - 1];
            for t in 0..k {
                z[i * k + t] = s[t] / d;
            }
        }
        // Backward: Lᵀ X = Y; in Lᵀ's row i the diagonal is the first entry.
        for i in (0..self.n).rev() {
            let lo = self.t_indptr[i];
            let hi = self.t_indptr[i + 1];
            s.copy_from_slice(&z[i * k..(i + 1) * k]);
            for p in lo + 1..hi {
                let v = self.t_values[p];
                let zb = &z[self.t_indices[p] * k..][..k];
                for t in 0..k {
                    s[t] -= v * zb[t];
                }
            }
            let d = self.t_values[lo];
            for t in 0..k {
                z[i * k + t] = s[t] / d;
            }
        }
    }

    /// [`solve_multi_generic`](Self::solve_multi_generic) with the batch
    /// width fixed at compile time: identical operations in identical
    /// order, with the `[f64; K]` block held in registers.
    fn solve_multi_fixed<const K: usize>(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..self.n {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            let mut s: [f64; K] = r[i * K..(i + 1) * K].try_into().unwrap();
            for p in lo..hi - 1 {
                let v = self.values[p];
                let zb: &[f64; K] = z[self.indices[p] * K..][..K].try_into().unwrap();
                for (sv, &zv) in s.iter_mut().zip(zb) {
                    *sv -= v * zv;
                }
            }
            let d = self.values[hi - 1];
            for (t, &sv) in s.iter().enumerate() {
                z[i * K + t] = sv / d;
            }
        }
        for i in (0..self.n).rev() {
            let lo = self.t_indptr[i];
            let hi = self.t_indptr[i + 1];
            let mut s: [f64; K] = z[i * K..(i + 1) * K].try_into().unwrap();
            for p in lo + 1..hi {
                let v = self.t_values[p];
                let zb: &[f64; K] = z[self.t_indices[p] * K..][..K].try_into().unwrap();
                for (sv, &zv) in s.iter_mut().zip(zb) {
                    *sv -= v * zv;
                }
            }
            let d = self.t_values[lo];
            for (t, &sv) in s.iter().enumerate() {
                z[i * K + t] = sv / d;
            }
        }
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve_into(r, z);
    }

    fn apply_multi(&self, r: &[f64], z: &mut [f64], k: usize) {
        self.solve_multi_into(r, z, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn laplacian_path(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn exact_on_tridiagonal() {
        // IC(0) on a tridiagonal matrix has no dropped fill, so it is the
        // exact Cholesky factorization: applying it solves the system.
        let a = laplacian_path(6);
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let b = a.mul_vec(&x_true);
        let mut z = vec![0.0; 6];
        pre.solve_into(&b, &mut z);
        for (zi, ti) in z.iter().zip(&x_true) {
            assert!((zi - ti).abs() < 1e-12, "{zi} vs {ti}");
        }
    }

    #[test]
    fn matches_dense_cholesky_when_no_fill() {
        let a = laplacian_path(5);
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let dense = crate::dense::DenseMatrix::from_rows(
            &a.to_dense().iter().map(|r| r.as_slice()).collect::<Vec<_>>(),
        );
        let chol = dense.cholesky().unwrap();
        let b = vec![1.0, 0.0, -1.0, 2.0, 0.5];
        let mut z = vec![0.0; 5];
        pre.solve_into(&b, &mut z);
        let x = chol.solve(&b);
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 2.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert!(matches!(
            IncompleteCholesky::factor(&a),
            Err(SolveError::NotPositiveDefinite { row: 1, .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let coo = CooMatrix::new(2, 3);
        assert!(matches!(
            IncompleteCholesky::factor(&coo.to_csr()),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn incomplete_on_2d_grid_is_close() {
        // 2-D 5-point Laplacian has fill; IC(0) is inexact but should still
        // be a decent approximation: ‖A (LLᵀ)⁻¹ b − b‖ ≪ ‖b‖.
        let n = 4;
        let idx = |r: usize, c: usize| r * n + c;
        let mut coo = CooMatrix::new(n * n, n * n);
        for r in 0..n {
            for c in 0..n {
                coo.push(idx(r, c), idx(r, c), 4.2);
                if r + 1 < n {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r + 1, c)), 1.0);
                }
                if c + 1 < n {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r, c + 1)), 1.0);
                }
            }
        }
        let a = coo.to_csr();
        let pre = IncompleteCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 3) as f64 - 1.0).collect();
        let mut z = vec![0.0; n * n];
        pre.solve_into(&b, &mut z);
        let az = a.mul_vec(&z);
        let err: f64 = az.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(err / nb < 0.5, "IC(0) too inaccurate: {}", err / nb);
    }
}
