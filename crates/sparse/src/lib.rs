//! Sparse linear algebra for power-grid analysis.
//!
//! PDN sign-off reduces to solving `A v = b` where `A` is a symmetric
//! positive-definite (SPD) conductance-like matrix with millions of unknowns
//! (paper §2). This crate provides everything the simulator needs:
//!
//! * [`coo::CooMatrix`] — triplet assembly during MNA stamping;
//! * [`csr::CsrMatrix`] — compressed-sparse-row storage with parallel
//!   mat-vec;
//! * [`dense::DenseMatrix`] — dense fallback with Cholesky, used for small
//!   systems and for cross-checking the sparse paths in tests;
//! * [`cholesky::SparseCholesky`] — elimination-tree sparse direct
//!   Cholesky for the repeated-solve pattern of transient analysis;
//! * [`supernodal::SupernodalCholesky`] — supernodal Cholesky with dense
//!   column panels driven by the [`panel`] GEMM/TRSM kernels: the
//!   paper-scale factor-once/solve-many path, with an analyze/factor/
//!   refactor split and threaded multi-RHS sweeps;
//! * [`ichol::IncompleteCholesky`] — zero-fill IC(0) preconditioner;
//! * [`cg`] — preconditioned conjugate gradient, the workhorse solver;
//! * [`ordering`] / [`mindeg`] / [`amd`] — reverse Cuthill–McKee,
//!   explicit-clique minimum-degree, and quotient-graph approximate
//!   minimum degree (the paper-scale fill-reducing ordering).
//!
//! # Example
//!
//! ```
//! use pdn_sparse::coo::CooMatrix;
//! use pdn_sparse::cg::{self, CgOptions};
//! use pdn_sparse::ichol::IncompleteCholesky;
//!
//! // 2x2 SPD system: [[4,1],[1,3]] x = [1,2]
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, 4.0);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 0, 1.0);
//! coo.push(1, 1, 3.0);
//! let a = coo.to_csr();
//! let pre = IncompleteCholesky::factor(&a).unwrap();
//! let sol = cg::solve(&a, &[1.0, 2.0], &pre, &CgOptions::default()).unwrap();
//! assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-8);
//! assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-8);
//! ```

pub mod amd;
pub mod cg;
pub mod cholesky;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod ichol;
pub mod mindeg;
pub mod ordering;
pub mod panel;
pub mod supernodal;
pub mod vecops;

pub use cg::{CgOptions, CgSolution};
pub use cholesky::SparseCholesky;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use error::{SolveError, SparseResult};
pub use ichol::IncompleteCholesky;
pub use supernodal::{FillOrdering, OrderingSelection, SupernodalCholesky, SymbolicCholesky};
