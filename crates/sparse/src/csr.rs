//! Compressed-sparse-row matrices with parallel mat-vec.

use rayon::prelude::*;

/// An immutable CSR matrix.
///
/// Invariants: `indptr` is monotonically non-decreasing with
/// `indptr.len() == n_rows + 1`; within each row, column indices are strictly
/// increasing and in range. [`crate::coo::CooMatrix::to_csr`] guarantees
/// these.
///
/// # Example
///
/// ```
/// use pdn_sparse::coo::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0);
/// coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the invariants listed on the type are violated.
    pub fn from_raw(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> CsrMatrix {
        assert_eq!(indptr.len(), n_rows + 1, "indptr length must be n_rows + 1");
        assert_eq!(indices.len(), values.len(), "indices/values length mismatch");
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len(), "indptr end must equal nnz");
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr must be non-decreasing");
        }
        for r in 0..n_rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "column indices must be strictly increasing in a row");
            }
            if let Some(&last) = row.last() {
                assert!(last < n_cols, "column index out of range");
            }
        }
        CsrMatrix { n_rows, n_cols, indptr, indices, values }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> CsrMatrix {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(columns, values)` slices of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        assert!(row < self.n_rows, "row out of range");
        let lo = self.indptr[row];
        let hi = self.indptr[row + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(row, col)`, 0.0 for structural zeros.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// `y = A x`, parallel over rows.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `y = A x` into a caller-provided buffer (avoids allocation in the
    /// transient time loop).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "mul_vec: x length mismatch");
        assert_eq!(y.len(), self.n_rows, "mul_vec: y length mismatch");
        // Parallel threshold: tiny systems are faster serial.
        if self.n_rows >= 4096 {
            y.par_iter_mut().enumerate().for_each(|(r, yr)| {
                let lo = self.indptr[r];
                let hi = self.indptr[r + 1];
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.indices[k]];
                }
                *yr = acc;
            });
        } else {
            for (r, yr) in y.iter_mut().enumerate() {
                let lo = self.indptr[r];
                let hi = self.indptr[r + 1];
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.indices[k]];
                }
                *yr = acc;
            }
        }
    }

    /// `Y = A X` for `k` interleaved vectors (`x[i * k + t]` is entry `i` of
    /// vector `t`). The matrix is streamed once for all `k` vectors — the
    /// multi-RHS amortization the batched transient solver is built on —
    /// instead of once per vector.
    ///
    /// Per vector, the accumulation order matches [`mul_vec_into`], so each
    /// column of the result is bitwise identical to a separate `mul_vec`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `x.len() != n_cols * k`, or `y.len() != n_rows * k`.
    pub fn mul_multi_into(&self, x: &[f64], k: usize, y: &mut [f64]) {
        assert!(k > 0, "mul_multi: k must be positive");
        assert_eq!(x.len(), self.n_cols * k, "mul_multi: x length mismatch");
        assert_eq!(y.len(), self.n_rows * k, "mul_multi: y length mismatch");
        // Common batch widths get a compile-time k so the per-row
        // accumulator block lives in registers.
        match k {
            2 => self.mul_multi_fixed::<2>(x, y),
            3 => self.mul_multi_fixed::<3>(x, y),
            4 => self.mul_multi_fixed::<4>(x, y),
            8 => self.mul_multi_fixed::<8>(x, y),
            _ => {
                let row_block = |(r, yr): (usize, &mut [f64])| {
                    yr.fill(0.0);
                    for p in self.indptr[r]..self.indptr[r + 1] {
                        let v = self.values[p];
                        let xb = &x[self.indices[p] * k..][..k];
                        for t in 0..k {
                            yr[t] += v * xb[t];
                        }
                    }
                };
                if self.n_rows >= 4096 {
                    y.par_chunks_mut(k).enumerate().for_each(row_block);
                } else {
                    y.chunks_mut(k).enumerate().for_each(row_block);
                }
            }
        }
    }

    /// [`mul_multi_into`](Self::mul_multi_into) with the batch width fixed
    /// at compile time: same floating-point operations in the same order,
    /// but the accumulator is a `[f64; K]` held in registers.
    fn mul_multi_fixed<const K: usize>(&self, x: &[f64], y: &mut [f64]) {
        let row_block = |(r, yr): (usize, &mut [f64])| {
            let mut acc = [0.0f64; K];
            for p in self.indptr[r]..self.indptr[r + 1] {
                let v = self.values[p];
                let xb: &[f64; K] = x[self.indices[p] * K..][..K].try_into().unwrap();
                for (a, &xv) in acc.iter_mut().zip(xb) {
                    *a += v * xv;
                }
            }
            yr.copy_from_slice(&acc);
        };
        if self.n_rows >= 4096 {
            y.par_chunks_mut(K).enumerate().for_each(row_block);
        } else {
            y.chunks_mut(K).enumerate().for_each(row_block);
        }
    }

    /// Main diagonal as a dense vector (zeros where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n_rows.min(self.n_cols)).map(|i| self.get(i, i)).collect()
    }

    /// Whether the matrix is numerically symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (v - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the matrix is (weakly row-) diagonally dominant — a cheap
    /// necessary sanity check for stamped conductance matrices.
    pub fn is_diagonally_dominant(&self, tol: f64) -> bool {
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            if diag + tol < off {
                return false;
            }
        }
        true
    }

    /// Dense row-major copy — only for tests and small matrices.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.n_cols]; self.n_rows];
        for (r, dense_row) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                dense_row[c] = v;
            }
        }
        out
    }

    /// Returns the matrix with rows and columns permuted by `perm`, where
    /// `perm[new] = old` (i.e. row `new` of the result is row `perm[new]` of
    /// `self`). Used to apply a fill-reducing ordering.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `perm` is not a permutation of
    /// `0..n`.
    pub fn permute_symmetric(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(self.n_rows, self.n_cols, "permute_symmetric requires a square matrix");
        assert_eq!(perm.len(), self.n_rows, "permutation length mismatch");
        let n = self.n_rows;
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n && inv[old] == usize::MAX, "perm is not a permutation");
            inv[old] = new;
        }
        let mut coo = crate::coo::CooMatrix::with_capacity(n, n, self.nnz());
        for r in 0..n {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(inv[r], inv[c], v);
            }
        }
        coo.to_csr()
    }

    /// Row pointers (for advanced consumers such as the IC(0) factorization).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use proptest::prelude::*;

    fn laplacian_path(n: usize) -> CsrMatrix {
        // 1-D resistor chain grounded at both ends: tridiagonal SPD.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn identity_matvec() {
        let a = CsrMatrix::identity(3);
        assert_eq!(a.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = laplacian_path(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dense = a.to_dense();
        let expect: Vec<f64> =
            dense.iter().map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum()).collect();
        assert_eq!(a.mul_vec(&x), expect);
    }

    #[test]
    fn multi_matvec_is_bitwise_identical_to_sequential() {
        use crate::vecops::{deinterleave_into, interleave};
        let a = laplacian_path(9);
        let n = a.n_rows();
        for k in [1usize, 3, 5] {
            let xs: Vec<Vec<f64>> = (0..k)
                .map(|t| (0..n).map(|i| (i as f64 + 1.0) * 0.3 - t as f64).collect())
                .collect();
            let singles: Vec<Vec<f64>> = xs.iter().map(|x| a.mul_vec(x)).collect();
            let refs: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
            let mut x_multi = vec![0.0; n * k];
            interleave(&refs, &mut x_multi);
            let mut y_multi = vec![0.0; n * k];
            a.mul_multi_into(&x_multi, k, &mut y_multi);
            let mut col = vec![0.0; n];
            for (t, expected) in singles.iter().enumerate() {
                deinterleave_into(&y_multi, k, t, &mut col);
                assert_eq!(&col, expected, "k={k}: column {t} differs");
            }
        }
    }

    #[test]
    fn symmetry_and_dominance() {
        let a = laplacian_path(4);
        assert!(a.is_symmetric(0.0));
        assert!(a.is_diagonally_dominant(1e-12));
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        assert!(!coo.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn diagonal_extraction() {
        let a = laplacian_path(3);
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn permute_symmetric_reverses() {
        let a = laplacian_path(3);
        let perm = vec![2, 1, 0];
        let b = a.permute_symmetric(&perm);
        // Reversal of a symmetric tridiagonal matrix is itself.
        assert_eq!(a.to_dense(), b.to_dense());
        // A non-symmetric permutation check: move row/col 0 to the end.
        let perm = vec![1, 2, 0];
        let c = a.permute_symmetric(&perm);
        assert!(c.is_symmetric(0.0));
        assert_eq!(c.get(2, 2), a.get(0, 0));
    }

    #[test]
    #[should_panic(expected = "indptr length")]
    fn from_raw_validates() {
        let _ = CsrMatrix::from_raw(2, 2, vec![0, 0], vec![], vec![]);
    }

    proptest! {
        #[test]
        fn matvec_agrees_with_dense_random(n in 1usize..12, seed in 0u64..1000) {
            use rand::{Rng as _, SeedableRng as _};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut coo = CooMatrix::new(n, n);
            for r in 0..n {
                for c in 0..n {
                    if rng.gen_bool(0.4) {
                        coo.push(r, c, rng.gen_range(-2.0..2.0));
                    }
                }
            }
            let a = coo.to_csr();
            let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let dense = a.to_dense();
            let expect: Vec<f64> = dense
                .iter()
                .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
                .collect();
            let got = a.mul_vec(&x);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() < 1e-10);
            }
        }
    }
}
