//! Small dense matrices with Cholesky factorization.
//!
//! Used as the direct solver for small systems (package macro-models, tiny
//! test grids) and as the reference implementation the sparse paths are
//! cross-checked against.

use crate::error::{SolveError, SparseResult};

/// A dense row-major square-or-rectangular matrix.
///
/// # Example
///
/// ```
/// use pdn_sparse::dense::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let chol = a.cholesky().unwrap();
/// let x = chol.solve(&[1.0, 2.0]);
/// assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
/// assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(n_rows: usize, n_cols: usize) -> DenseMatrix {
        assert!(n_rows > 0 && n_cols > 0, "dense matrix must be non-empty");
        DenseMatrix { n_rows, n_cols, data: vec![0.0; n_rows * n_cols] }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        assert!(!rows.is_empty(), "dense matrix must be non-empty");
        let n_cols = rows[0].len();
        assert!(n_cols > 0, "dense matrix must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix { n_rows: rows.len(), n_cols, data }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.n_rows && c < self.n_cols, "dense index out of range");
        self.data[r * self.n_cols + c]
    }

    /// Sets the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n_rows && c < self.n_cols, "dense index out of range");
        self.data[r * self.n_cols + c] = v;
    }

    /// Adds `v` at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n_rows && c < self.n_cols, "dense index out of range");
        self.data[r * self.n_cols + c] += v;
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "mul_vec: length mismatch");
        (0..self.n_rows)
            .map(|r| {
                let row = &self.data[r * self.n_cols..(r + 1) * self.n_cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix. Only the lower triangle of `self` is read.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive and [`SolveError::DimensionMismatch`] if the matrix
    /// is not square.
    pub fn cholesky(&self) -> SparseResult<DenseCholesky> {
        if self.n_rows != self.n_cols {
            return Err(SolveError::DimensionMismatch {
                detail: format!("cholesky of {}x{} matrix", self.n_rows, self.n_cols),
            });
        }
        let n = self.n_rows;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(SolveError::NotPositiveDefinite { row: i, pivot: s });
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Ok(DenseCholesky { n, l })
    }
}

/// A dense Cholesky factor, produced by [`DenseMatrix::cholesky`].
#[derive(Debug, Clone)]
pub struct DenseCholesky {
    n: usize,
    l: Vec<f64>,
}

impl DenseCholesky {
    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor size.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve: length mismatch");
        let n = self.n;
        let mut y = b.to_vec();
        // Forward: L y = b
        for i in 0..n {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                s -= self.l[i * n + k] * yk;
            }
            y[i] = s / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                s -= self.l[k * n + i] * yk;
            }
            y[i] = s / self.l[i * n + i];
        }
        y
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cholesky_known_answer() {
        // A = [[25, 15, -5], [15, 18, 0], [-5, 0, 11]]
        // L = [[5,0,0],[3,3,0],[-1,1,3]]
        let a = DenseMatrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let c = a.cholesky().unwrap();
        assert!((c.l[0] - 5.0).abs() < 1e-12);
        assert!((c.l[3] - 3.0).abs() < 1e-12);
        assert!((c.l[4] - 3.0).abs() < 1e-12);
        assert!((c.l[6] + 1.0).abs() < 1e-12);
        assert!((c.l[7] - 1.0).abs() < 1e-12);
        assert!((c.l[8] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_round_trip() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let c = a.cholesky().unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.mul_vec(&x_true);
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn non_spd_rejected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        assert!(matches!(a.cholesky(), Err(SolveError::NotPositiveDefinite { .. })));
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.cholesky(), Err(SolveError::DimensionMismatch { .. })));
    }

    proptest! {
        #[test]
        fn random_spd_round_trip(n in 1usize..8, seed in 0u64..500) {
            use rand::{Rng as _, SeedableRng as _};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            // Build SPD as B Bᵀ + n I.
            let b: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let s: f64 = b[i].iter().zip(&b[j]).map(|(&u, &v)| u * v).sum();
                    a.set(i, j, s + if i == j { n as f64 } else { 0.0 });
                }
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let rhs = a.mul_vec(&x_true);
            let x = a.cholesky().unwrap().solve(&rhs);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-8);
            }
        }
    }
}
