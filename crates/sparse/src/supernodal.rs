//! Supernodal sparse Cholesky: the paper-scale factor-once/solve-many
//! direct path.
//!
//! The transient ground truth is one SPD matrix with thousands of
//! right-hand sides (paper §2). The simplicial up-looking factorization in
//! [`crate::cholesky`] re-walks the elimination tree for every row and
//! scatters scalars; at paper scale (0.58 M–4.4 M nodes) that leaves nearly
//! all the machine's floating-point width idle. This module instead:
//!
//! 1. **analyzes once** per grid structure ([`SymbolicCholesky::analyze`]):
//!    picks a fill-reducing ordering at runtime (AMD vs RCM by predicted
//!    factor fill, at every size), postorders the elimination tree, detects
//!    *supernodes* — runs of columns with identical below-diagonal
//!    structure — and relaxes them by amalgamating small neighbours into
//!    wider panels at a bounded padding cost;
//! 2. **factors per value change** ([`SupernodalCholesky::factor_with`] /
//!    [`SupernodalCholesky::refactor`]): a left-looking pass over dense
//!    column panels driven by the [`crate::panel`] GEMM/SYRK/TRSM kernels,
//!    so the flops land in auto-vectorized dense micro-kernels instead of
//!    pointer-chasing scalar code;
//! 3. **solves many right-hand sides per factorization**: blocked
//!    forward/backward substitution that streams each panel once for a
//!    whole block of vectors, and [`SupernodalCholesky::solve_sweep`] which
//!    fans independent RHS blocks out across `std::thread::scope` threads
//!    (`PDN_THREADS`), with per-vector results bitwise independent of the
//!    thread count.
//!
//! The factorization handles the fill-reducing permutation internally:
//! callers pass the matrix and right-hand sides in their natural node
//! numbering.

use crate::amd::amd;
use crate::cholesky::elimination_tree;
use crate::csr::CsrMatrix;
use crate::error::{SolveError, SparseResult};
use crate::mindeg::minimum_degree;
use crate::ordering::reverse_cuthill_mckee;
use crate::panel;
use std::sync::Arc;

/// Widest panel a supernode may occupy (fundamental runs are split, and
/// amalgamation never exceeds it). Bounds the factor scratch at
/// `max_height x MAX_SUPERNODE_WIDTH` and keeps the solve's per-panel RHS
/// block cache-resident.
pub const MAX_SUPERNODE_WIDTH: usize = 32;

/// Relaxed amalgamation: merge neighbouring supernodes while the explicit
/// zeros introduced stay under a tolerated fraction of the merged panel.
/// This is the base fraction for panels approaching
/// [`MAX_SUPERNODE_WIDTH`]; narrow panels tolerate more padding (55 % up
/// to width 8, 45 % up to 16) because per-supernode overhead and
/// degenerate GEMM shapes cost more than the wasted flops there.
const AMALGAMATION_RELAX: f64 = 0.25;

/// Number of right-hand sides per block in [`SupernodalCholesky::solve_sweep`].
/// Each block is solved independently, so this also fixes the unit of work
/// handed to sweep threads — per-vector results depend on the block size
/// (fixed) but never on the thread count.
pub const SWEEP_BLOCK: usize = 16;

/// Fill-reducing ordering applied (internally) by the supernodal factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillOrdering {
    /// Keep the matrix's natural order (tests / already-ordered inputs).
    Natural,
    /// Reverse Cuthill–McKee: linear-time, bandwidth-oriented; the
    /// fallback when its predicted fill beats AMD's (rare on meshes).
    Rcm,
    /// Greedy explicit-clique minimum degree: excellent fill, but the
    /// implementation turns quadratic past its bitset fast path (~16 k
    /// nodes), so it is opt-in rather than auto-selected.
    MinimumDegree,
    /// Approximate minimum degree ([`crate::amd`]): quotient-graph
    /// complexity with near-mindeg fill — the paper-scale default
    /// whenever its predicted fill wins.
    Amd,
}

impl FillOrdering {
    /// Stable name, used in solver-settings digests and reports.
    pub fn name(self) -> &'static str {
        match self {
            FillOrdering::Natural => "natural",
            FillOrdering::Rcm => "rcm",
            FillOrdering::MinimumDegree => "mindeg",
            FillOrdering::Amd => "amd",
        }
    }

    /// Stable numeric id for the `factor.ordering` telemetry gauge
    /// (gauges carry `f64`, so the name itself cannot be exported).
    pub fn telemetry_index(self) -> usize {
        match self {
            FillOrdering::Natural => 0,
            FillOrdering::Rcm => 1,
            FillOrdering::MinimumDegree => 2,
            FillOrdering::Amd => 3,
        }
    }
}

/// Outcome of the automatic ordering comparison run by
/// [`SymbolicCholesky::analyze`]: both candidates' predicted fill and the
/// winner. Only present on auto-analyzed symbolics —
/// [`SymbolicCholesky::analyze_with`] skips the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderingSelection {
    /// The ordering that won the comparison.
    pub ordering: FillOrdering,
    /// Predicted nnz(L) (diagonal included) under RCM.
    pub rcm_nnz: usize,
    /// Predicted nnz(L) under AMD.
    pub amd_nnz: usize,
}

/// The structure-only half of the factorization: ordering, elimination
/// tree, supernode partition and panel layout. Analyze once per grid
/// structure, then run any number of numeric factorizations against it
/// (e.g. re-stamping `G + C/Δt` after a Δt change).
#[derive(Debug)]
pub struct SymbolicCholesky {
    n: usize,
    /// Composed permutation (fill ordering ∘ etree postorder), `perm[new] = old`.
    perm: Vec<usize>,
    ordering: FillOrdering,
    /// Supernode `s` covers permuted columns `sn_ptr[s]..sn_ptr[s + 1]`.
    sn_ptr: Vec<usize>,
    /// Permuted column → supernode index.
    col_to_sn: Vec<usize>,
    /// Row structure of supernode `s`: `rows[rows_ptr[s]..rows_ptr[s + 1]]`,
    /// ascending; the first `width(s)` entries are the supernode's own
    /// columns.
    rows_ptr: Vec<usize>,
    rows: Vec<usize>,
    /// Panel value offsets; panel `s` is column-major `height x width`.
    panel_ptr: Vec<usize>,
    /// Non-zeros of the lower trapezoids (the true factor fill, padding
    /// included).
    factor_nnz: usize,
    /// Tallest panel, in rows (sizes the factor's update scratch).
    max_height: usize,
    /// Comparison record when the ordering was auto-selected.
    selection: Option<OrderingSelection>,
}

impl SymbolicCholesky {
    /// Analyzes a symmetric positive-definite matrix, selecting the fill
    /// ordering at runtime: AMD and RCM both have their factor fill
    /// predicted from an O(nnz(L)) symbolic pass, and the smaller one
    /// wins — at every size; both candidates have near-linear ordering
    /// cost, so no cutoff excludes the comparison at paper scale. The
    /// comparison is recorded on the result
    /// ([`SymbolicCholesky::selection`]) and exported through the
    /// `factor.ordering` / `factor.predicted_nnz_l.{rcm,amd}` telemetry
    /// gauges.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] for non-square input.
    pub fn analyze(a: &CsrMatrix) -> SparseResult<SymbolicCholesky> {
        check_square(a)?;
        let rcm_perm = reverse_cuthill_mckee(a);
        let amd_perm = amd(a);
        let rcm_nnz = predicted_factor_nnz(a, &rcm_perm);
        let amd_nnz = predicted_factor_nnz(a, &amd_perm);
        let (ordering, p0) = if amd_nnz <= rcm_nnz {
            (FillOrdering::Amd, amd_perm)
        } else {
            (FillOrdering::Rcm, rcm_perm)
        };
        pdn_core::telemetry::gauge_set("factor.ordering", ordering.telemetry_index() as f64);
        pdn_core::telemetry::gauge_set("factor.predicted_nnz_l.rcm", rcm_nnz as f64);
        pdn_core::telemetry::gauge_set("factor.predicted_nnz_l.amd", amd_nnz as f64);
        let mut sym = SymbolicCholesky::analyze_perm(a, ordering, p0)?;
        sym.selection = Some(OrderingSelection { ordering, rcm_nnz, amd_nnz });
        Ok(sym)
    }

    /// Like [`SymbolicCholesky::analyze`] with an explicit ordering choice
    /// (no comparison is run, so [`SymbolicCholesky::selection`] is
    /// `None`).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] for non-square input.
    pub fn analyze_with(a: &CsrMatrix, ordering: FillOrdering) -> SparseResult<SymbolicCholesky> {
        check_square(a)?;
        let n = a.n_rows();
        let p0: Vec<usize> = match ordering {
            FillOrdering::Natural => (0..n).collect(),
            FillOrdering::Rcm => reverse_cuthill_mckee(a),
            FillOrdering::MinimumDegree => minimum_degree(a),
            FillOrdering::Amd => amd(a),
        };
        SymbolicCholesky::analyze_perm(a, ordering, p0)
    }

    /// Shared back half of the analysis, starting from an already-computed
    /// fill permutation `p0` (`p0[new] = old`).
    fn analyze_perm(
        a: &CsrMatrix,
        ordering: FillOrdering,
        p0: Vec<usize>,
    ) -> SparseResult<SymbolicCholesky> {
        let n = a.n_rows();
        debug_assert_eq!(p0.len(), n);
        // Postorder the elimination tree so supernodes become contiguous
        // column runs, then fold the postorder into the permutation.
        let a0 = a.permute_symmetric(&p0);
        let post = postorder(&elimination_tree(&a0));
        let perm: Vec<usize> = post.iter().map(|&j| p0[j]).collect();
        let ap = a.permute_symmetric(&perm);
        let parent = elimination_tree(&ap);

        // Symbolic pass 1: column counts of L (diagonal included).
        let mut counts = vec![1usize; n];
        {
            let mut walker = EtreeWalker::new(n);
            let mut reach = Vec::new();
            for k in 0..n {
                walker.reach_into(&ap, k, &parent, &mut reach);
                for &j in &reach {
                    counts[j] += 1;
                }
            }
        }

        // Fundamental supernodes: column j extends the run of j-1 when it
        // is j-1's parent and loses exactly the one row — capped at
        // MAX_SUPERNODE_WIDTH so panels stay register-tile sized.
        let mut first_col = Vec::new();
        for j in 0..n {
            let extends = j > 0
                && parent[j - 1] == j
                && counts[j] + 1 == counts[j - 1]
                && j - first_col.last().copied().unwrap_or(0) < MAX_SUPERNODE_WIDTH
                && !first_col.is_empty();
            if !extends {
                first_col.push(j);
            }
        }
        let n_fund = first_col.len();
        let mut fund_of_col = vec![0usize; n];
        for (s, &c0) in first_col.iter().enumerate() {
            let c1 = first_col.get(s + 1).copied().unwrap_or(n);
            fund_of_col[c0..c1].fill(s);
        }

        // Symbolic pass 2: exact row structure per fundamental supernode
        // (the first column's pattern, which covers every member column's).
        let mut fund_rows_ptr = vec![0usize; n_fund + 1];
        for (s, &c0) in first_col.iter().enumerate() {
            fund_rows_ptr[s + 1] = fund_rows_ptr[s] + counts[c0];
        }
        let mut fund_rows = vec![0usize; fund_rows_ptr[n_fund]];
        {
            let mut fill = fund_rows_ptr.clone();
            for (s, &c0) in first_col.iter().enumerate() {
                fund_rows[fill[s]] = c0;
                fill[s] += 1;
            }
            let mut is_first = vec![false; n];
            for &c0 in &first_col {
                is_first[c0] = true;
            }
            let mut walker = EtreeWalker::new(n);
            let mut reach = Vec::new();
            for k in 0..n {
                walker.reach_into(&ap, k, &parent, &mut reach);
                for &j in &reach {
                    if is_first[j] {
                        let s = fund_of_col[j];
                        fund_rows[fill[s]] = k;
                        fill[s] += 1;
                    }
                }
            }
            debug_assert_eq!(fill[..n_fund], fund_rows_ptr[1..]);
            // `k` ascends, so each supernode's list is already sorted.
        }

        // Relaxed amalgamation: greedily merge neighbouring supernodes
        // while the panel stays narrow and the explicit zeros introduced
        // stay under AMALGAMATION_RELAX of the merged trapezoid.
        let mut sn_ptr = vec![0usize];
        let mut rows: Vec<usize> = Vec::new();
        let mut rows_ptr = vec![0usize];
        {
            let mut cur: Vec<usize> = Vec::new(); // merged row set (sorted)
            let mut cur_first = 0usize;
            let mut cur_width = 0usize;
            let mut cur_true = 0usize; // exact fill of the members
            let mut merged: Vec<usize> = Vec::new();
            for s in 0..n_fund {
                let c0 = first_col[s];
                let c1 = first_col.get(s + 1).copied().unwrap_or(n);
                let w = c1 - c0;
                let srows = &fund_rows[fund_rows_ptr[s]..fund_rows_ptr[s + 1]];
                let true_nnz = trapezoid(srows.len(), w);
                if cur_width > 0 && cur_width + w <= MAX_SUPERNODE_WIDTH {
                    merged.clear();
                    sorted_union(&cur, srows, &mut merged);
                    let w_new = cur_width + w;
                    let padded = trapezoid(merged.len(), w_new);
                    let zeros = padded - (cur_true + true_nnz);
                    // Narrow panels gain more from merging than the padded
                    // zeros cost (per-supernode overhead and degenerate
                    // GEMM shapes dominate there), so the tolerance is
                    // graduated: generous while the merged panel is still
                    // register-tile narrow, tightening to the base
                    // fraction as it approaches MAX_SUPERNODE_WIDTH.
                    let relax = if w_new <= 8 {
                        0.55
                    } else if w_new <= 16 {
                        0.45
                    } else {
                        AMALGAMATION_RELAX
                    };
                    if (zeros as f64) <= relax * padded as f64 {
                        std::mem::swap(&mut cur, &mut merged);
                        cur_width = w_new;
                        cur_true += true_nnz;
                        continue;
                    }
                }
                if cur_width > 0 {
                    sn_ptr.push(cur_first + cur_width);
                    rows.extend_from_slice(&cur);
                    rows_ptr.push(rows.len());
                }
                cur.clear();
                cur.extend_from_slice(srows);
                cur_first = c0;
                cur_width = w;
                cur_true = true_nnz;
            }
            if cur_width > 0 {
                sn_ptr.push(cur_first + cur_width);
                rows.extend_from_slice(&cur);
                rows_ptr.push(rows.len());
            }
        }

        let ns = sn_ptr.len() - 1;
        let mut col_to_sn = vec![0usize; n];
        let mut panel_ptr = vec![0usize; ns + 1];
        let mut factor_nnz = 0usize;
        let mut max_height = 0usize;
        for s in 0..ns {
            let (c0, c1) = (sn_ptr[s], sn_ptr[s + 1]);
            let w = c1 - c0;
            let h = rows_ptr[s + 1] - rows_ptr[s];
            debug_assert!(rows[rows_ptr[s]..rows_ptr[s] + w]
                .iter()
                .enumerate()
                .all(|(l, &r)| r == c0 + l));
            col_to_sn[c0..c1].fill(s);
            panel_ptr[s + 1] = panel_ptr[s] + h * w;
            factor_nnz += trapezoid(h, w);
            max_height = max_height.max(h);
        }
        // `sn_ptr` starts [0] and every group appended its end, so the last
        // entry is n exactly when every column was assigned.
        debug_assert_eq!(sn_ptr.last().copied(), Some(n));

        Ok(SymbolicCholesky {
            n,
            perm,
            ordering,
            sn_ptr,
            col_to_sn,
            rows_ptr,
            rows,
            panel_ptr,
            factor_nnz,
            max_height,
            selection: None,
        })
    }

    /// Dimension of the analyzed system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The fill ordering this analysis applied.
    pub fn ordering(&self) -> FillOrdering {
        self.ordering
    }

    /// The RCM-vs-AMD comparison behind an auto-selected ordering, or
    /// `None` when the caller fixed the ordering via
    /// [`SymbolicCholesky::analyze_with`].
    pub fn selection(&self) -> Option<OrderingSelection> {
        self.selection
    }

    /// Number of supernodes.
    pub fn n_supernodes(&self) -> usize {
        self.sn_ptr.len() - 1
    }

    /// Stored panel entries (dense rectangles; the allocation of one
    /// numeric factorization).
    pub fn panel_nnz(&self) -> usize {
        *self.panel_ptr.last().unwrap_or(&0)
    }

    /// Non-zeros of the factor's lower trapezoids — comparable to
    /// [`crate::cholesky::SparseCholesky::nnz`] plus amalgamation padding.
    pub fn factor_nnz(&self) -> usize {
        self.factor_nnz
    }

    fn width(&self, s: usize) -> usize {
        self.sn_ptr[s + 1] - self.sn_ptr[s]
    }

    fn srows(&self, s: usize) -> &[usize] {
        &self.rows[self.rows_ptr[s]..self.rows_ptr[s + 1]]
    }
}

/// The numeric factor `P A Pᵀ = L Lᵀ`, stored as dense column panels laid
/// out by an [`Arc<SymbolicCholesky>`] (shareable across factors of
/// matrices with the same structure).
///
/// # Example
///
/// ```
/// use pdn_sparse::coo::CooMatrix;
/// use pdn_sparse::supernodal::SupernodalCholesky;
///
/// let mut coo = CooMatrix::new(3, 3);
/// for i in 0..3 { coo.push(i, i, 4.0); }
/// coo.push(0, 1, 1.0); coo.push(1, 0, 1.0);
/// coo.push(1, 2, 1.0); coo.push(2, 1, 1.0);
/// let a = coo.to_csr();
/// let chol = SupernodalCholesky::factor(&a).unwrap();
/// let x_true = vec![1.0, -2.0, 0.5];
/// let b = a.mul_vec(&x_true);
/// let x = chol.solve(&b);
/// for (xi, ti) in x.iter().zip(&x_true) {
///     assert!((xi - ti).abs() < 1e-12);
/// }
/// ```
#[derive(Debug)]
pub struct SupernodalCholesky {
    sym: Arc<SymbolicCholesky>,
    values: Vec<f64>,
}

impl SupernodalCholesky {
    /// Analyzes and factors in one call.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] on pivot breakdown (the
    /// reported `row` is in the caller's natural numbering) and
    /// [`SolveError::DimensionMismatch`] for non-square input.
    pub fn factor(a: &CsrMatrix) -> SparseResult<SupernodalCholesky> {
        SupernodalCholesky::factor_with(Arc::new(SymbolicCholesky::analyze(a)?), a)
    }

    /// Numeric factorization against an existing symbolic analysis.
    ///
    /// # Errors
    ///
    /// As [`SupernodalCholesky::factor`], plus
    /// [`SolveError::DimensionMismatch`] when the matrix does not fit the
    /// analysis (different size, or structural entries outside the analyzed
    /// pattern).
    pub fn factor_with(
        sym: Arc<SymbolicCholesky>,
        a: &CsrMatrix,
    ) -> SparseResult<SupernodalCholesky> {
        let mut chol = SupernodalCholesky { values: vec![0.0; sym.panel_nnz()], sym };
        chol.refactor(a)?;
        Ok(chol)
    }

    /// Re-runs the numeric factorization in place for a matrix with new
    /// values on the analyzed structure (e.g. `G + C/Δt` after a Δt
    /// change). Bit-identical to a fresh [`SupernodalCholesky::factor_with`]
    /// against the same analysis.
    ///
    /// # Errors
    ///
    /// As [`SupernodalCholesky::factor_with`]. After an error the factor
    /// contents are unspecified; refactor again before solving.
    pub fn refactor(&mut self, a: &CsrMatrix) -> SparseResult<()> {
        if a.n_rows() != self.sym.n || a.n_cols() != self.sym.n {
            return Err(SolveError::DimensionMismatch {
                detail: format!(
                    "refactor of {}x{} matrix against a {}-dim analysis",
                    a.n_rows(),
                    a.n_cols(),
                    self.sym.n
                ),
            });
        }
        let ap = a.permute_symmetric(&self.sym.perm);
        numeric_factor(&self.sym, &ap, &mut self.values)
    }

    /// The shared symbolic analysis.
    pub fn symbolic(&self) -> &Arc<SymbolicCholesky> {
        &self.sym
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Stored panel entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Solves `A x = b` (natural numbering; the fill permutation is
    /// internal).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `A x = b` in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factor dimension.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.sym.n, "solve: length mismatch");
        let mut xp = vec![0.0; self.sym.n];
        for (new, &old) in self.sym.perm.iter().enumerate() {
            xp[new] = x[old];
        }
        self.solve_permuted_multi(&mut xp, 1);
        for (new, &old) in self.sym.perm.iter().enumerate() {
            x[old] = xp[new];
        }
    }

    /// Solves `A X = B` for `k` interleaved right-hand sides (entry `i` of
    /// vector `t` at `x[i * k + t]`, matching
    /// [`crate::cholesky::SparseCholesky::solve_multi_in_place`]). Every
    /// panel is streamed once per block instead of once per vector, and
    /// per-vector operations run in the same order as a `k = 1` solve, so
    /// each vector's result is bitwise identical to a separate
    /// [`SupernodalCholesky::solve_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `x.len() != dim() * k`.
    pub fn solve_multi_in_place(&self, x: &mut [f64], k: usize) {
        assert!(k > 0, "solve_multi: k must be positive");
        assert_eq!(x.len(), self.sym.n * k, "solve_multi: length mismatch");
        let mut xp = vec![0.0; x.len()];
        for (new, &old) in self.sym.perm.iter().enumerate() {
            xp[new * k..new * k + k].copy_from_slice(&x[old * k..old * k + k]);
        }
        self.solve_permuted_multi(&mut xp, k);
        for (new, &old) in self.sym.perm.iter().enumerate() {
            x[old * k..old * k + k].copy_from_slice(&xp[new * k..new * k + k]);
        }
    }

    /// Solves `nrhs` contiguous right-hand sides (`rhs[v * dim()..]` is
    /// vector `v`), blocked [`SWEEP_BLOCK`] at a time and fanned out across
    /// `std::thread::scope` threads sized by `PDN_THREADS`
    /// ([`pdn_core::threads::configure_from_env`]). Blocks are fixed-size
    /// units of work, so per-vector results are bitwise independent of the
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != dim() * nrhs`.
    pub fn solve_sweep(&self, rhs: &mut [f64], nrhs: usize) {
        let n = self.sym.n;
        assert_eq!(rhs.len(), n * nrhs, "solve_sweep: length mismatch");
        if nrhs == 0 || n == 0 {
            return;
        }
        let blocks: Vec<&mut [f64]> = rhs.chunks_mut(n * SWEEP_BLOCK).collect();
        let threads = pdn_core::threads::configure_from_env().min(blocks.len()).max(1);
        if threads <= 1 {
            for block in blocks {
                self.solve_block(block);
            }
            return;
        }
        // Deal blocks round-robin; each thread owns its blocks exclusively.
        let mut per_thread: Vec<Vec<&mut [f64]>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, block) in blocks.into_iter().enumerate() {
            per_thread[i % threads].push(block);
        }
        std::thread::scope(|scope| {
            for mine in per_thread {
                scope.spawn(move || {
                    for block in mine {
                        self.solve_block(block);
                    }
                });
            }
        });
    }

    /// Solves one vector-major block in place (permute+interleave in, solve,
    /// deinterleave+unpermute out).
    fn solve_block(&self, block: &mut [f64]) {
        let n = self.sym.n;
        let k = block.len() / n;
        debug_assert_eq!(block.len(), n * k);
        let mut xp = vec![0.0; block.len()];
        for (new, &old) in self.sym.perm.iter().enumerate() {
            for (t, chunk) in block.chunks(n).enumerate() {
                xp[new * k + t] = chunk[old];
            }
        }
        self.solve_permuted_multi(&mut xp, k);
        for (new, &old) in self.sym.perm.iter().enumerate() {
            for (t, chunk) in block.chunks_mut(n).enumerate() {
                chunk[old] = xp[new * k + t];
            }
        }
    }

    /// Blocked forward + backward substitution in the permuted numbering.
    /// Per vector `t`, the operation order is independent of `k`.
    fn solve_permuted_multi(&self, xp: &mut [f64], k: usize) {
        let sym = &*self.sym;
        let ns = sym.n_supernodes();
        let mut yb = vec![0.0; MAX_SUPERNODE_WIDTH * k];
        let mut zb = vec![0.0; sym.max_height * k];

        // Forward: L Y = B, one panel at a time.
        for s in 0..ns {
            let c0 = sym.sn_ptr[s];
            let w = sym.width(s);
            let srows = sym.srows(s);
            let h = srows.len();
            let hb = h - w;
            let p = &self.values[sym.panel_ptr[s]..sym.panel_ptr[s + 1]];
            let yb = &mut yb[..w * k];
            yb.copy_from_slice(&xp[c0 * k..(c0 + w) * k]);
            // Dense lower-triangular solve on the diagonal block.
            for l in 0..w {
                let d = p[l * h + l];
                let (yl, ytail) = yb[l * k..].split_at_mut(k);
                for v in yl.iter_mut() {
                    *v /= d;
                }
                for i in l + 1..w {
                    let coeff = p[l * h + i];
                    let yi = &mut ytail[(i - l - 1) * k..(i - l) * k];
                    for (v, &yv) in yi.iter_mut().zip(yl.iter()) {
                        *v -= coeff * yv;
                    }
                }
            }
            xp[c0 * k..(c0 + w) * k].copy_from_slice(yb);
            // Below-diagonal update: z = L21 y, scattered into xp.
            if hb > 0 {
                let zb = &mut zb[..hb * k];
                zb.fill(0.0);
                for l in 0..w {
                    let yl = &yb[l * k..(l + 1) * k];
                    let col = &p[l * h + w..(l + 1) * h];
                    for (zi, &coeff) in zb.chunks_mut(k).zip(col) {
                        for (z, &yv) in zi.iter_mut().zip(yl) {
                            *z += coeff * yv;
                        }
                    }
                }
                for (zi, &r) in zb.chunks(k).zip(&srows[w..]) {
                    let xr = &mut xp[r * k..(r + 1) * k];
                    for (x, &z) in xr.iter_mut().zip(zi) {
                        *x -= z;
                    }
                }
            }
        }

        // Backward: Lᵀ Z = Y, panels in reverse.
        for s in (0..ns).rev() {
            let c0 = sym.sn_ptr[s];
            let w = sym.width(s);
            let srows = sym.srows(s);
            let h = srows.len();
            let hb = h - w;
            let p = &self.values[sym.panel_ptr[s]..sym.panel_ptr[s + 1]];
            if hb > 0 {
                let zb = &mut zb[..hb * k];
                for (zi, &r) in zb.chunks_mut(k).zip(&srows[w..]) {
                    zi.copy_from_slice(&xp[r * k..(r + 1) * k]);
                }
                // y -= L21ᵀ z.
                for l in 0..w {
                    let col = &p[l * h + w..(l + 1) * h];
                    let xl = &mut xp[(c0 + l) * k..(c0 + l + 1) * k];
                    for (zi, &coeff) in zb.chunks(k).zip(col) {
                        for (x, &z) in xl.iter_mut().zip(zi) {
                            *x -= coeff * z;
                        }
                    }
                }
            }
            // Dense upper-triangular solve with L11ᵀ.
            for l in (0..w).rev() {
                for i in l + 1..w {
                    let coeff = p[l * h + i];
                    for t in 0..k {
                        let xi = xp[(c0 + i) * k + t];
                        xp[(c0 + l) * k + t] -= coeff * xi;
                    }
                }
                let d = p[l * h + l];
                for t in 0..k {
                    xp[(c0 + l) * k + t] /= d;
                }
            }
        }
    }
}

/// Left-looking supernodal numeric factorization into `values` (laid out
/// by `sym`); `ap` is the matrix already permuted by `sym.perm`.
fn numeric_factor(sym: &SymbolicCholesky, ap: &CsrMatrix, values: &mut [f64]) -> SparseResult<()> {
    let ns = sym.n_supernodes();
    // Linked lists of pending descendant updates per target supernode.
    let mut head = vec![usize::MAX; ns];
    let mut next = vec![usize::MAX; ns];
    // Per-descendant progress pointer into its row list.
    let mut pos = vec![0usize; ns];
    // Global row → panel-local row of the current target supernode.
    let mut map = vec![usize::MAX; sym.n];
    // Target-local row of each descendant row, computed once per update.
    let mut lrow = vec![0usize; sym.max_height];
    let mut update = vec![0.0f64; sym.max_height * MAX_SUPERNODE_WIDTH];

    for s in 0..ns {
        let c0 = sym.sn_ptr[s];
        let c1 = sym.sn_ptr[s + 1];
        let w = c1 - c0;
        let srows = sym.srows(s);
        let h = srows.len();
        let (done, rest) = values.split_at_mut(sym.panel_ptr[s]);
        let pnl = &mut rest[..h * w];
        pnl.fill(0.0);
        for (li, &r) in srows.iter().enumerate() {
            map[r] = li;
        }
        // Scatter the lower triangle of A's columns (row j of the symmetric
        // CSR is column j's pattern).
        for l in 0..w {
            let j = c0 + l;
            let (cols, vals) = ap.row(j);
            for (&r, &v) in cols.iter().zip(vals) {
                if r < j {
                    continue;
                }
                let li = map[r];
                if li == usize::MAX {
                    // Structure outside the analysis: a refactor against a
                    // matrix this symbolic pass never saw.
                    return Err(SolveError::DimensionMismatch {
                        detail: format!(
                            "matrix entry ({r}, {j}) outside the analyzed pattern"
                        ),
                    });
                }
                pnl[l * h + li] = v;
            }
        }
        // Apply pending descendant updates.
        let mut d = head[s];
        while d != usize::MAX {
            let d_next = next[d];
            let drows = sym.srows(d);
            let dh = drows.len();
            let dw = sym.width(d);
            let j1 = pos[d];
            let mut j2 = j1;
            while j2 < dh && drows[j2] < c1 {
                j2 += 1;
            }
            let m = dh - j1;
            let nc = j2 - j1;
            let dpanel = &done[sym.panel_ptr[d]..sym.panel_ptr[d] + dh * dw];
            // Resolve the descendant's rows to target-local rows once (the
            // old per-column map walk re-did these lookups `nc` times).
            // `usize::MAX` marks amalgamation padding: rows that are
            // structural zeros in the target, carrying exactly-0.0 updates.
            let lrow = &mut lrow[..m];
            let mut contig = true;
            for (t, &r) in drows[j1..].iter().enumerate() {
                lrow[t] = map[r];
                contig &= lrow[t] == lrow[0].wrapping_add(t);
            }
            if contig && lrow[0] != usize::MAX {
                // The update lands on a contiguous target sub-panel (rows
                // and, since the leading `nc` rows are the target's own
                // columns, columns too): subtract the GEMM straight into it.
                // This writes junk into the strictly-upper slots of the
                // diagonal block, which no kernel or solve ever reads.
                let l0 = lrow[0];
                panel::gemm_nt_sub(
                    &mut pnl[l0 * h + l0..],
                    h,
                    &dpanel[j1..],
                    dh,
                    &dpanel[j1..],
                    dh,
                    m,
                    nc,
                    dw,
                );
            } else {
                // U = L_d[j1.., :] * L_d[j1..j2, :]ᵀ  (m x nc) written
                // fresh (no zero-fill pass), then scatter-subtracted
                // through the precomputed local rows. Padded rows
                // (`usize::MAX`) carry exactly-0.0 updates and are skipped.
                let u = &mut update[..m * nc];
                panel::gemm_nt_out(u, m, &dpanel[j1..], dh, &dpanel[j1..], dh, m, nc, dw);
                for cc in 0..nc {
                    let l = drows[j1 + cc] - c0;
                    let pcol = &mut pnl[l * h..(l + 1) * h];
                    let ucol = &u[cc * m..(cc + 1) * m];
                    for (&li, &uv) in lrow[cc..].iter().zip(&ucol[cc..]) {
                        if li != usize::MAX {
                            pcol[li] -= uv;
                        } else {
                            debug_assert_eq!(uv, 0.0, "nonzero update outside target pattern");
                        }
                    }
                }
            }
            pos[d] = j2;
            if j2 < dh {
                let t = sym.col_to_sn[drows[j2]];
                next[d] = head[t];
                head[t] = d;
            }
            d = d_next;
        }
        // Factor the panel: dense Cholesky of the diagonal block + TRSM of
        // the rows below it.
        if let Err((l, pivot)) = panel::factor_panel(pnl, h, w) {
            pdn_core::telemetry::counter_add("sparse.cholesky.breakdowns", 1);
            return Err(SolveError::NotPositiveDefinite { row: sym.perm[c0 + l], pivot });
        }
        // Queue this supernode's own below-diagonal block as a pending
        // update for the supernode owning its first below row.
        if h > w {
            pos[s] = w;
            let t = sym.col_to_sn[srows[w]];
            next[s] = head[t];
            head[t] = s;
        }
        for &r in srows {
            map[r] = usize::MAX;
        }
    }
    pdn_core::telemetry::counter_add("sparse.supernodal.factorizations", 1);
    Ok(())
}

fn check_square(a: &CsrMatrix) -> SparseResult<()> {
    if a.n_rows() != a.n_cols() {
        return Err(SolveError::DimensionMismatch {
            detail: format!("cholesky of {}x{} matrix", a.n_rows(), a.n_cols()),
        });
    }
    Ok(())
}

/// Entries of an `h x w` lower trapezoid (`h ≥ w`): column `l` holds
/// `h - l` entries.
fn trapezoid(h: usize, w: usize) -> usize {
    h * w - w * (w - 1) / 2
}

/// Merges two sorted index lists into `out` (cleared first by the caller).
fn sorted_union(a: &[usize], b: &[usize], out: &mut Vec<usize>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Postorders an elimination forest (`parent[j] == usize::MAX` marks
/// roots); returns `post` with `post[new] = old`. Children and roots are
/// visited in ascending order, so the result is deterministic.
fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut first_child = vec![usize::MAX; n];
    let mut next_sibling = vec![usize::MAX; n];
    for j in (0..n).rev() {
        let p = parent[j];
        if p != usize::MAX {
            next_sibling[j] = first_child[p];
            first_child[p] = j;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for (root, &p) in parent.iter().enumerate() {
        if p != usize::MAX {
            continue;
        }
        stack.push(root);
        while let Some(&node) = stack.last() {
            let c = first_child[node];
            if c != usize::MAX {
                first_child[node] = next_sibling[c];
                stack.push(c);
            } else {
                post.push(node);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(post.len(), n);
    post
}

/// Reusable elimination-tree reach computation (the pattern of one factor
/// row, unsorted): the work arrays persist across rows so a full symbolic
/// sweep is O(nnz(L)).
struct EtreeWalker {
    marked: Vec<usize>,
}

impl EtreeWalker {
    fn new(n: usize) -> EtreeWalker {
        EtreeWalker { marked: vec![usize::MAX; n] }
    }

    /// Collects `{j < k : L[k][j] ≠ 0}` into `out` (cleared first).
    fn reach_into(&mut self, a: &CsrMatrix, k: usize, parent: &[usize], out: &mut Vec<usize>) {
        out.clear();
        self.marked[k] = k;
        let (cols, _) = a.row(k);
        for &i in cols.iter().filter(|&&i| i < k) {
            let mut j = i;
            while self.marked[j] != k {
                out.push(j);
                self.marked[j] = k;
                j = parent[j];
                debug_assert!(j != usize::MAX, "etree truncated");
            }
        }
    }
}

/// Predicted factor fill (nnz of `L`, diagonal included) for `a` under
/// `perm` — the symbolic quantity [`SymbolicCholesky::analyze`] compares
/// across candidate orderings.
pub fn predicted_factor_nnz(a: &CsrMatrix, perm: &[usize]) -> usize {
    let ap = a.permute_symmetric(perm);
    let n = ap.n_rows();
    let parent = elimination_tree(&ap);
    let mut walker = EtreeWalker::new(n);
    let mut reach = Vec::new();
    let mut nnz = n; // diagonal
    for k in 0..n {
        walker.reach_into(&ap, k, &parent, &mut reach);
        nnz += reach.len();
    }
    nnz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::SparseCholesky;
    use crate::coo::CooMatrix;
    use proptest::prelude::*;
    use rand::{Rng as _, SeedableRng as _};

    fn grid_laplacian(rows: usize, cols: usize, shift: f64) -> CsrMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                coo.push(idx(r, c), idx(r, c), shift);
                if r + 1 < rows {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r + 1, c)), 1.0);
                }
                if c + 1 < cols {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r, c + 1)), 1.0);
                }
            }
        }
        coo.to_csr()
    }

    fn random_spd(n: usize, seed: u64) -> CsrMatrix {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        let mut row_sums = vec![0.0; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.3) {
                    let g = rng.gen_range(0.1..2.0);
                    coo.push(i, j, -g);
                    coo.push(j, i, -g);
                    row_sums[i] += g;
                    row_sums[j] += g;
                }
            }
        }
        for (i, &rs) in row_sums.iter().enumerate() {
            coo.push(i, i, rs + rng.gen_range(0.1..1.0));
        }
        coo.to_csr()
    }

    #[test]
    fn matches_simplicial_on_grid_all_orderings() {
        let a = grid_laplacian(9, 7, 0.6);
        let n = a.n_rows();
        let simplicial = SparseCholesky::factor(&a).unwrap();
        for ordering in [
            FillOrdering::Natural,
            FillOrdering::Rcm,
            FillOrdering::MinimumDegree,
            FillOrdering::Amd,
        ] {
            let sym = Arc::new(SymbolicCholesky::analyze_with(&a, ordering).unwrap());
            assert_eq!(sym.ordering(), ordering);
            let chol = SupernodalCholesky::factor_with(sym, &a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
            let expect = simplicial.solve(&b);
            let got = chol.solve(&b);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-10, "{ordering:?}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn matches_simplicial_on_random_spd() {
        for seed in 0..8 {
            let n = 40 + 7 * seed as usize;
            let a = random_spd(n, seed);
            let simplicial = SparseCholesky::factor(&a).unwrap();
            let chol = SupernodalCholesky::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i * 29) % 17) as f64 - 8.0).collect();
            let expect = simplicial.solve(&b);
            let got = chol.solve(&b);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-10, "seed {seed}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn reports_breakdown_on_indefinite_input() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 4.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, -2.0); // indefinite
        coo.push(0, 1, 0.5);
        coo.push(1, 0, 0.5);
        let a = coo.to_csr();
        match SupernodalCholesky::factor(&a) {
            Err(SolveError::NotPositiveDefinite { row, pivot }) => {
                assert_eq!(row, 2, "breakdown row is reported in natural numbering");
                assert!(pivot <= 0.0);
            }
            other => panic!("expected breakdown, got {other:?}"),
        }
        let rect = CooMatrix::new(2, 3).to_csr();
        assert!(matches!(
            SupernodalCholesky::factor(&rect),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_is_bit_identical_to_fresh_factor() {
        let a = grid_laplacian(8, 8, 0.5);
        let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
        let mut chol = SupernodalCholesky::factor_with(sym.clone(), &a).unwrap();
        // Same structure, new values: a different diagonal shift (a Δt
        // change re-stamps exactly like this).
        let b = grid_laplacian(8, 8, 1.25);
        chol.refactor(&b).unwrap();
        let fresh = SupernodalCholesky::factor_with(sym, &b).unwrap();
        assert_eq!(chol.values, fresh.values, "refactor drifted from a fresh factor");
        // And refactoring back reproduces the original factor bitwise.
        let orig = SupernodalCholesky::factor(&a).unwrap();
        chol.refactor(&a).unwrap();
        assert_eq!(chol.values, orig.values);
    }

    #[test]
    fn refactor_rejects_structure_changes() {
        let a = grid_laplacian(5, 5, 0.5);
        let mut chol = SupernodalCholesky::factor(&a).unwrap();
        let bigger = grid_laplacian(6, 5, 0.5);
        assert!(matches!(
            chol.refactor(&bigger),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn multi_rhs_is_bitwise_identical_to_single_solves() {
        use crate::vecops::{deinterleave_into, interleave};
        let a = grid_laplacian(7, 6, 0.4);
        let n = a.n_rows();
        let chol = SupernodalCholesky::factor(&a).unwrap();
        for k in [1usize, 2, 4, 7, 16] {
            let rhs: Vec<Vec<f64>> = (0..k)
                .map(|t| {
                    (0..n).map(|i| ((i * (t + 2)) % 9) as f64 - 4.0 + t as f64 * 0.5).collect()
                })
                .collect();
            let singles: Vec<Vec<f64>> = rhs.iter().map(|b| chol.solve(b)).collect();
            let refs: Vec<&[f64]> = rhs.iter().map(|v| v.as_slice()).collect();
            let mut multi = vec![0.0; n * k];
            interleave(&refs, &mut multi);
            chol.solve_multi_in_place(&mut multi, k);
            let mut col = vec![0.0; n];
            for (t, expected) in singles.iter().enumerate() {
                deinterleave_into(&multi, k, t, &mut col);
                assert_eq!(&col, expected, "k={k}: vector {t} differs (bitwise)");
            }
        }
    }

    #[test]
    fn sweep_matches_single_solves_under_threads() {
        // More vectors than SWEEP_BLOCK so the sweep spans several blocks;
        // results must be bitwise equal to sequential solve_in_place calls
        // regardless of how many threads serviced the blocks.
        let a = grid_laplacian(8, 9, 0.3);
        let n = a.n_rows();
        let chol = SupernodalCholesky::factor(&a).unwrap();
        let nrhs = SWEEP_BLOCK * 2 + 5;
        let mut sweep = vec![0.0; n * nrhs];
        for (v, chunk) in sweep.chunks_mut(n).enumerate() {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = ((i * (v + 3)) % 13) as f64 - 6.0;
            }
        }
        let expected: Vec<Vec<f64>> =
            sweep.chunks(n).map(|b| chol.solve(b)).collect();
        chol.solve_sweep(&mut sweep, nrhs);
        for (v, (got, want)) in sweep.chunks(n).zip(&expected).enumerate() {
            assert_eq!(got, want.as_slice(), "vector {v} drifted in the sweep");
        }
    }

    #[test]
    fn analysis_reports_consistent_fill() {
        let a = grid_laplacian(10, 10, 0.5);
        let sym = SymbolicCholesky::analyze(&a).unwrap();
        assert_eq!(sym.dim(), 100);
        assert!(sym.n_supernodes() >= 1);
        assert!(sym.n_supernodes() <= 100);
        // Trapezoid ≤ rectangle per panel.
        assert!(sym.factor_nnz() <= sym.panel_nnz());
        // The factor must hold at least the matrix's lower triangle.
        assert!(sym.factor_nnz() >= (a.nnz() + a.n_rows()) / 2);
        // Auto-selection on a mesh picks one of the two real orderings.
        assert_ne!(sym.ordering(), FillOrdering::Natural);
    }

    #[test]
    fn predicted_fill_prefers_amd_on_grids() {
        // On 2-D meshes minimum-degree-class orderings produce less fill
        // than RCM; the auto analysis must therefore select AMD, and must
        // publish the comparison it ran.
        let a = grid_laplacian(14, 14, 0.4);
        let rcm = predicted_factor_nnz(&a, &reverse_cuthill_mckee(&a));
        let amd_fill = predicted_factor_nnz(&a, &amd(&a));
        assert!(amd_fill < rcm, "amd {amd_fill} should beat rcm {rcm} on a grid");
        let sym = SymbolicCholesky::analyze(&a).unwrap();
        assert_eq!(sym.ordering(), FillOrdering::Amd);
        let sel = sym.selection().expect("auto analysis records its comparison");
        assert_eq!(sel.ordering, FillOrdering::Amd);
        assert_eq!(sel.rcm_nnz, rcm);
        assert_eq!(sel.amd_nnz, amd_fill);
        // A fixed ordering skips the comparison.
        let fixed = SymbolicCholesky::analyze_with(&a, FillOrdering::Rcm).unwrap();
        assert_eq!(fixed.selection(), None);
    }

    #[test]
    fn auto_selection_has_no_size_cutoff() {
        // Regression for the old MINDEG_AUTO_LIMIT: above 16 384 unknowns
        // the analysis silently fell back to RCM without predicting fill.
        // A 150x150 grid (22 500 nodes) sits past that boundary; the
        // fill comparison must still run and still pick AMD.
        let a = grid_laplacian(150, 150, 0.4);
        let sym = SymbolicCholesky::analyze(&a).unwrap();
        let sel = sym.selection().expect("comparison must run at every size");
        assert_eq!(sel.ordering, FillOrdering::Amd);
        assert!(
            sel.amd_nnz < sel.rcm_nnz,
            "amd {} should beat rcm {} at 22.5k nodes",
            sel.amd_nnz,
            sel.rcm_nnz
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn amd_supernodal_matches_simplicial_on_shuffled_grids(
            rows in 2usize..9,
            cols in 2usize..9,
            seed in 0u64..100,
        ) {
            // Shuffle the grid's node numbering so AMD sees an arbitrary
            // input order, then check the supernodal factor under
            // FillOrdering::Amd against the simplicial reference.
            let g = grid_laplacian(rows, cols, 0.6);
            let n = g.n_rows();
            let mut shuffle: Vec<usize> = (0..n).collect();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            for i in (1..n).rev() {
                shuffle.swap(i, rng.gen_range(0..i + 1));
            }
            let a = g.permute_symmetric(&shuffle);
            let sym = Arc::new(SymbolicCholesky::analyze_with(&a, FillOrdering::Amd).unwrap());
            prop_assert_eq!(sym.ordering(), FillOrdering::Amd);
            let chol = SupernodalCholesky::factor_with(sym, &a).unwrap();
            let simplicial = SparseCholesky::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
            let expect = simplicial.solve(&b);
            let got = chol.solve(&b);
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() < 1e-10, "{} vs {}", g, e);
            }
        }

        #[test]
        fn random_spd_round_trip(n in 2usize..40, seed in 0u64..100) {
            let a = random_spd(n, seed);
            let chol = SupernodalCholesky::factor(&a).unwrap();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b = a.mul_vec(&x_true);
            let x = chol.solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                prop_assert!((xi - ti).abs() < 1e-8, "{} vs {}", xi, ti);
            }
        }
    }
}
