//! Approximate minimum degree (AMD) fill-reducing ordering.
//!
//! The quotient-graph formulation of minimum degree, after Amestoy, Davis
//! and Duff: eliminating a pivot does not form its clique explicitly (the
//! quadratic step that caps [`crate::mindeg::minimum_degree`] at ~16 k
//! nodes) — it records the clique as an *element* whose member list is the
//! pivot's pattern. A variable's adjacency is then its remaining original
//! edges plus the elements it belongs to, and three classic refinements
//! keep every structure shrinking:
//!
//! * **element absorption** — eliminating a pivot absorbs every element in
//!   its list (their cliques are subsets of the new one), and *aggressive
//!   absorption* additionally folds in any element whose members all landed
//!   inside the new pivot pattern;
//! * **supervariable detection** — variables whose quotient-graph adjacency
//!   lists become identical (hash-bucketed, then verified entry-for-entry)
//!   are merged into one weighted supervariable and eliminated together;
//! * **approximate external degree** — instead of the exact degree (which
//!   would require set unions per update), each touched variable gets the
//!   Amestoy/Davis/Duff upper bound
//!   `d̂ = min(n − k, d_prev + |Lp \ i|, |A_i \ Lp| + |Lp \ i| + Σ_e |Le \ Lp|)`,
//!   computable in time linear in the lists scanned.
//!
//! Together these give near-linear analysis cost on mesh-like PDN matrices
//! at paper node counts (0.58 M–4.4 M), where the explicit-clique
//! implementation is unusable and RCM's bandwidth-oriented fill is several
//! times larger. Every tie is broken deterministically (intrusive
//! degree-list LIFO order, hash groups sorted by vertex id), so the
//! returned order is reproducible across runs and platforms — a
//! requirement for the content-addressed ground-truth cache, whose keys
//! include the ordering's factor structure.

use crate::csr::CsrMatrix;

const NONE: u32 = u32::MAX;

/// Computes an approximate-minimum-degree elimination ordering of a
/// symmetric matrix's graph. Returns `perm` with `perm[new] = old`,
/// directly usable with [`CsrMatrix::permute_symmetric`].
///
/// Merged supervariables are emitted contiguously (representative first),
/// which is exactly the order the supernodal analysis wants: runs of
/// indistinguishable columns become wide panels.
///
/// # Panics
///
/// Panics if the matrix is not square.
///
/// # Example
///
/// ```
/// use pdn_sparse::amd::amd;
/// use pdn_sparse::coo::CooMatrix;
///
/// let mut coo = CooMatrix::new(3, 3);
/// for i in 0..3 { coo.push(i, i, 2.0); }
/// coo.push(0, 1, -1.0); coo.push(1, 0, -1.0);
/// let perm = amd(&coo.to_csr());
/// let mut sorted = perm.clone();
/// sorted.sort();
/// assert_eq!(sorted, vec![0, 1, 2]);
/// ```
pub fn amd(a: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.n_rows(), a.n_cols(), "ordering requires a square matrix");
    let n = a.n_rows();
    assert!(n < NONE as usize, "amd supports at most 2^32 - 2 nodes");
    if n == 0 {
        return Vec::new();
    }
    Workspace::new(a).run()
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeState {
    /// Still a variable of the quotient graph.
    Live,
    /// Chosen as a pivot; its id now names the element it created.
    Eliminated,
    /// Merged into the supervariable whose representative is the payload.
    Merged(u32),
}

/// All quotient-graph state. Node ids serve double duty: a `Live`/`Merged`
/// id is a variable, an `Eliminated` id is the element its pivot created —
/// the two never coexist, so shared index spaces (and the shared `mark`
/// array) are unambiguous.
struct Workspace {
    n: usize,
    /// Remaining original-edge adjacency of each variable (pruned lazily:
    /// edges into eliminated/merged nodes and edges covered by a shared
    /// element are dropped the next time the list is scanned).
    vars: Vec<Vec<u32>>,
    /// Elements each variable belongs to.
    elems: Vec<Vec<u32>>,
    /// Member variables of each element (compacted lazily).
    evars: Vec<Vec<u32>>,
    elem_alive: Vec<bool>,
    /// Supervariable weight; 0 once merged away.
    nv: Vec<u32>,
    /// Approximate external degree, in original-variable units.
    degree: Vec<usize>,
    state: Vec<NodeState>,
    // Intrusive degree lists: `head[d]` chains live variables of
    // (approximate) degree `d` in LIFO insertion order.
    head: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    mindeg: usize,
    /// Pivot-scoped membership marker (`mark[v] == tag` ⇔ v ∈ Lp), also
    /// reused with fresh tags for list-equality checks.
    mark: Vec<u64>,
    /// First-touch tag and |Le \ Lp| accumulator per element, per pivot.
    wtag: Vec<u64>,
    w: Vec<i64>,
    tag: u64,
}

impl Workspace {
    fn new(a: &CsrMatrix) -> Workspace {
        let n = a.n_rows();
        // Symmetrize defensively: the elimination graph is undirected, so
        // a structurally unsymmetric input still yields a valid order.
        let mut vars: Vec<Vec<u32>> = vec![Vec::new(); n];
        for r in 0..n {
            for &c in a.row(r).0 {
                if c != r {
                    vars[r].push(c as u32);
                    vars[c].push(r as u32);
                }
            }
        }
        for list in &mut vars {
            list.sort_unstable();
            list.dedup();
        }
        let degree: Vec<usize> = vars.iter().map(Vec::len).collect();
        let mut ws = Workspace {
            n,
            vars,
            elems: vec![Vec::new(); n],
            evars: vec![Vec::new(); n],
            elem_alive: vec![false; n],
            nv: vec![1; n],
            degree,
            state: vec![NodeState::Live; n],
            head: vec![NONE; n + 1],
            next: vec![NONE; n],
            prev: vec![NONE; n],
            mindeg: 0,
            mark: vec![0; n],
            wtag: vec![0; n],
            w: vec![0; n],
            tag: 0,
        };
        // Insert in reverse so each degree chain pops in ascending id
        // order (LIFO head insertion).
        for v in (0..n as u32).rev() {
            ws.insert(v);
        }
        ws.mindeg = 0;
        ws
    }

    fn insert(&mut self, v: u32) {
        let d = self.degree[v as usize];
        let h = self.head[d];
        self.prev[v as usize] = NONE;
        self.next[v as usize] = h;
        if h != NONE {
            self.prev[h as usize] = v;
        }
        self.head[d] = v;
        if d < self.mindeg {
            self.mindeg = d;
        }
    }

    fn unlink(&mut self, v: u32) {
        let (pv, nx) = (self.prev[v as usize], self.next[v as usize]);
        if pv == NONE {
            self.head[self.degree[v as usize]] = nx;
        } else {
            self.next[pv as usize] = nx;
        }
        if nx != NONE {
            self.prev[nx as usize] = pv;
        }
    }

    /// Pops the head of the lowest non-empty degree chain. `mindeg` only
    /// ever lags behind (inserts pull it down), so the forward walk is
    /// amortized O(1); a live variable must exist when this is called.
    fn pop_min(&mut self) -> u32 {
        loop {
            let h = self.head[self.mindeg];
            if h != NONE {
                self.unlink(h);
                return h;
            }
            debug_assert!(self.mindeg < self.n, "pop_min on an empty quotient graph");
            self.mindeg += 1;
        }
    }

    /// Marker-verified list equality: `i` and `j` are indistinguishable
    /// when their element and variable lists hold the same sets (ids are
    /// unambiguous across the two lists — see the struct docs).
    fn indistinguishable(&mut self, i: u32, j: u32) -> bool {
        let (iu, ju) = (i as usize, j as usize);
        if self.elems[iu].len() != self.elems[ju].len()
            || self.vars[iu].len() != self.vars[ju].len()
        {
            return false;
        }
        self.tag += 1;
        let t = self.tag;
        for &x in self.elems[iu].iter().chain(self.vars[iu].iter()) {
            self.mark[x as usize] = t;
        }
        self.elems[ju]
            .iter()
            .chain(self.vars[ju].iter())
            .all(|&x| self.mark[x as usize] == t)
    }

    fn run(mut self) -> Vec<usize> {
        let n = self.n;
        let mut elim: Vec<u32> = Vec::with_capacity(n);
        let mut nelim = 0usize;
        let mut lp: Vec<u32> = Vec::new();
        let mut hashes: Vec<(u64, u32)> = Vec::new();
        while nelim < n {
            let p = self.pop_min();
            let pu = p as usize;
            self.state[pu] = NodeState::Eliminated;

            // --- Form the pivot element Lp: the union of p's remaining
            // original edges and the members of every element p belongs
            // to, minus eliminated/merged nodes and p itself. ---
            self.tag += 1;
            let tag = self.tag;
            self.mark[pu] = tag;
            lp.clear();
            let pvars = std::mem::take(&mut self.vars[pu]);
            for &v in &pvars {
                let vu = v as usize;
                if self.state[vu] == NodeState::Live && self.mark[vu] != tag {
                    self.mark[vu] = tag;
                    self.unlink(v);
                    lp.push(v);
                }
            }
            let pelems = std::mem::take(&mut self.elems[pu]);
            for &e in &pelems {
                let eu = e as usize;
                if !self.elem_alive[eu] {
                    continue;
                }
                // Absorb e: its clique is a subset of the new element's.
                self.elem_alive[eu] = false;
                let members = std::mem::take(&mut self.evars[eu]);
                for &v in &members {
                    let vu = v as usize;
                    if self.state[vu] == NodeState::Live && self.mark[vu] != tag {
                        self.mark[vu] = tag;
                        self.unlink(v);
                        lp.push(v);
                    }
                }
            }
            let degme: usize = lp.iter().map(|&v| self.nv[v as usize] as usize).sum();
            let nvpiv = self.nv[pu] as usize;
            nelim += nvpiv;
            elim.push(p);

            // --- Scan 1: per adjacent element e, w[e] := |Le \ Lp| in
            // supervariable weight (first touch compacts e's member list
            // and re-derives its live size exactly). ---
            for &i in &lp {
                let iu = i as usize;
                let mut k = 0;
                while k < self.elems[iu].len() {
                    let e = self.elems[iu][k];
                    let eu = e as usize;
                    if !self.elem_alive[eu] {
                        self.elems[iu].swap_remove(k);
                        continue;
                    }
                    if self.wtag[eu] != tag {
                        self.wtag[eu] = tag;
                        let state = &self.state;
                        let nv = &self.nv;
                        let mut size = 0usize;
                        self.evars[eu].retain(|&v| {
                            let live = state[v as usize] == NodeState::Live;
                            if live {
                                size += nv[v as usize] as usize;
                            }
                            live
                        });
                        self.w[eu] = size as i64;
                    }
                    self.w[eu] -= self.nv[iu] as i64;
                    k += 1;
                }
            }

            // --- Scan 2: per i ∈ Lp, prune lists and set the approximate
            // external degree via the Amestoy/Davis/Duff bound. ---
            for &i in &lp {
                let iu = i as usize;
                let nvi = self.nv[iu] as usize;
                let mut deg = 0usize;
                let mut k = 0;
                while k < self.elems[iu].len() {
                    let eu = self.elems[iu][k] as usize;
                    debug_assert_eq!(self.wtag[eu], tag);
                    if self.w[eu] == 0 {
                        // Aggressive absorption: every live member of e sits
                        // inside Lp, so the new element covers it entirely.
                        self.elem_alive[eu] = false;
                        self.evars[eu] = Vec::new();
                        self.elems[iu].swap_remove(k);
                    } else {
                        deg += self.w[eu] as usize;
                        k += 1;
                    }
                }
                {
                    let state = &self.state;
                    let mark = &self.mark;
                    let nv = &self.nv;
                    self.vars[iu].retain(|&v| {
                        let vu = v as usize;
                        // Drop dead nodes and edges into Lp (covered by
                        // the new element from here on).
                        let keep = state[vu] == NodeState::Live && mark[vu] != tag;
                        if keep {
                            deg += nv[vu] as usize;
                        }
                        keep
                    });
                }
                self.elems[iu].push(p);
                let d_prev = self.degree[iu] + (degme - nvi);
                let d_scan = deg + (degme - nvi);
                let d_live = n - nelim - nvi;
                self.degree[iu] = d_prev.min(d_scan).min(d_live);
            }

            // --- Scan 3: supervariable detection. Hash every i ∈ Lp by
            // its (order-independent) adjacency content, sort the
            // (hash, id) pairs, and verify candidates inside each equal-
            // hash group — smallest id becomes the representative. ---
            hashes.clear();
            for &i in &lp {
                let iu = i as usize;
                let mut h = (self.elems[iu].len() as u64) ^ ((self.vars[iu].len() as u64) << 32);
                for &x in self.elems[iu].iter().chain(self.vars[iu].iter()) {
                    h = h.wrapping_add(splitmix(x as u64));
                }
                hashes.push((h, i));
            }
            hashes.sort_unstable();
            let mut g0 = 0;
            while g0 < hashes.len() {
                let mut g1 = g0 + 1;
                while g1 < hashes.len() && hashes[g1].0 == hashes[g0].0 {
                    g1 += 1;
                }
                for ai in g0..g1 {
                    let i = hashes[ai].1;
                    if self.nv[i as usize] == 0 {
                        continue;
                    }
                    let candidates: &[(u64, u32)] = &hashes[ai + 1..g1];
                    for &(_, j) in candidates {
                        if self.nv[j as usize] == 0 || !self.indistinguishable(i, j) {
                            continue;
                        }
                        let nvj = self.nv[j as usize];
                        self.nv[i as usize] += nvj;
                        self.nv[j as usize] = 0;
                        // j was counted in i's external degree (it is in
                        // Lp); folded in, it no longer is.
                        self.degree[i as usize] =
                            self.degree[i as usize].saturating_sub(nvj as usize);
                        self.state[j as usize] = NodeState::Merged(i);
                        self.vars[j as usize] = Vec::new();
                        self.elems[j as usize] = Vec::new();
                    }
                }
                g0 = g1;
            }

            // --- Publish the new element and requeue the survivors. ---
            let survivors: Vec<u32> =
                lp.iter().copied().filter(|&i| self.nv[i as usize] > 0).collect();
            for &i in &survivors {
                self.insert(i);
            }
            if !survivors.is_empty() {
                self.elem_alive[pu] = true;
                self.evars[pu] = survivors;
            }
        }

        // --- Expand supervariables: each representative is followed by
        // every variable merged into it, depth first, so indistinguishable
        // columns land contiguously. ---
        let mut child_head = vec![NONE; n];
        let mut child_next = vec![NONE; n];
        for j in (0..n).rev() {
            if let NodeState::Merged(parent) = self.state[j] {
                child_next[j] = child_head[parent as usize];
                child_head[parent as usize] = j as u32;
            }
        }
        let mut perm = Vec::with_capacity(n);
        let mut stack: Vec<u32> = Vec::new();
        for &p in &elim {
            stack.push(p);
            while let Some(x) = stack.pop() {
                perm.push(x as usize);
                let mut c = child_head[x as usize];
                while c != NONE {
                    stack.push(c);
                    c = child_next[c as usize];
                }
            }
        }
        debug_assert_eq!(perm.len(), n, "amd dropped or duplicated a node");
        perm
    }
}

/// SplitMix64 finalizer: cheap, deterministic id mixing so structurally
/// different lists rarely share a hash (collisions only cost a verify).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::SparseCholesky;
    use crate::coo::CooMatrix;
    use crate::mindeg::minimum_degree;
    use crate::ordering::reverse_cuthill_mckee;
    use proptest::prelude::*;
    use rand::{Rng as _, SeedableRng as _};

    fn grid_laplacian(rows: usize, cols: usize) -> CsrMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                coo.push(idx(r, c), idx(r, c), 4.5);
                if r + 1 < rows {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r + 1, c)), 1.0);
                }
                if c + 1 < cols {
                    coo.stamp_conductance(Some(idx(r, c)), Some(idx(r, c + 1)), 1.0);
                }
            }
        }
        coo.to_csr()
    }

    fn assert_permutation(perm: &[usize], n: usize) {
        assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &v in perm {
            assert!(v < n, "out-of-range entry {v}");
            assert!(!seen[v], "duplicate entry {v}");
            seen[v] = true;
        }
    }

    #[test]
    fn produces_a_permutation_on_grids() {
        for (rows, cols) in [(1, 1), (1, 9), (5, 5), (7, 11), (13, 13)] {
            let a = grid_laplacian(rows, cols);
            assert_permutation(&amd(&a), rows * cols);
        }
    }

    #[test]
    fn handles_degenerate_graphs() {
        // Empty.
        assert!(amd(&CooMatrix::new(0, 0).to_csr()).is_empty());
        // Diagonal only (no edges at all).
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 1.0);
        }
        assert_permutation(&amd(&coo.to_csr()), 5);
        // Disconnected: one edge plus isolated nodes.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 1.0);
        }
        coo.stamp_conductance(Some(0), Some(1), 1.0);
        assert_permutation(&amd(&coo.to_csr()), 4);
        // Star: the hub (initial degree 5) cannot be picked until four
        // leaves have gone and its external degree has decayed to a
        // leaf's 1 — after that the tie may break either way.
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 6.0);
        }
        for leaf in 1..6 {
            coo.stamp_conductance(Some(0), Some(leaf), 1.0);
        }
        let perm = amd(&coo.to_csr());
        assert_permutation(&perm, 6);
        let hub_pos = perm.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 4, "hub eliminated at {hub_pos} while degree exceeded a leaf's");
    }

    #[test]
    fn is_deterministic() {
        let a = grid_laplacian(17, 19);
        let first = amd(&a);
        for _ in 0..3 {
            assert_eq!(amd(&a), first, "amd order drifted between runs");
        }
    }

    #[test]
    fn fill_beats_rcm_and_matches_mindeg_class_on_grids() {
        // The point of the algorithm: dramatically less fill than RCM on
        // meshes, and in the same class as exact minimum degree.
        let a = grid_laplacian(24, 24);
        let nnz_of = |perm: &[usize]| {
            SparseCholesky::factor(&a.permute_symmetric(perm)).expect("spd").nnz()
        };
        let amd_fill = nnz_of(&amd(&a));
        let rcm_fill = nnz_of(&reverse_cuthill_mckee(&a));
        let md_fill = nnz_of(&minimum_degree(&a));
        assert!(amd_fill < rcm_fill, "amd {amd_fill} should beat rcm {rcm_fill}");
        assert!(
            amd_fill as f64 <= md_fill as f64 * 1.2,
            "amd {amd_fill} far off exact min-degree {md_fill}"
        );
    }

    #[test]
    fn supervariables_group_indistinguishable_columns() {
        // A clique of 4 indistinguishable nodes hanging off a path: the
        // clique members merge into one supervariable and must come out
        // contiguously in the permutation.
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 8.0);
        }
        for i in 0..4 {
            for j in i + 1..4 {
                coo.stamp_conductance(Some(i), Some(j), 1.0);
            }
        }
        for i in 4..7 {
            coo.stamp_conductance(Some(i), Some(i + 1), 1.0);
        }
        coo.stamp_conductance(Some(0), Some(4), 1.0);
        let perm = amd(&coo.to_csr());
        assert_permutation(&perm, 8);
        let pos: Vec<usize> =
            (0..4).map(|v| perm.iter().position(|&x| x == v).unwrap()).collect();
        let (lo, hi) = (*pos.iter().min().unwrap(), *pos.iter().max().unwrap());
        // 1..4 are mutually indistinguishable (0 also touches node 4);
        // allow the representative split but insist the clique is one
        // contiguous run of the order.
        assert!(hi - lo <= 3, "clique scattered across the order: {pos:?}");
    }

    fn random_symmetric_pattern(n: usize, seed: u64, density: f64) -> CsrMatrix {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + n as f64);
            for j in (i + 1)..n {
                if rng.gen_bool(density) {
                    coo.push(i, j, -1.0);
                    coo.push(j, i, -1.0);
                }
            }
        }
        coo.to_csr()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn returns_valid_permutation_on_random_patterns(
            n in 1usize..60,
            seed in 0u64..1000,
            density in 0.02f64..0.6,
        ) {
            let a = random_symmetric_pattern(n, seed, density);
            let perm = amd(&a);
            prop_assert_eq!(perm.len(), n);
            let mut seen = vec![false; n];
            for &v in &perm {
                prop_assert!(v < n);
                prop_assert!(!seen[v], "duplicate {}", v);
                seen[v] = true;
            }
        }

        #[test]
        fn factorization_succeeds_under_amd_order(n in 2usize..40, seed in 0u64..200) {
            // The permuted matrix must stay factorable and solve correctly:
            // an invalid order (or one that confuses the symbolic pass)
            // would surface here.
            let a = random_symmetric_pattern(n, seed, 0.3);
            let perm = amd(&a);
            let chol = SparseCholesky::factor(&a.permute_symmetric(&perm)).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
            let b = a.mul_vec(&x_true);
            let pb: Vec<f64> = perm.iter().map(|&old| b[old]).collect();
            let y = chol.solve(&pb);
            for (new, &old) in perm.iter().enumerate() {
                prop_assert!((y[new] - x_true[old]).abs() < 1e-8);
            }
        }
    }
}
