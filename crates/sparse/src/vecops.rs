//! Small dense-vector kernels shared by the iterative solvers.

/// Dot product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(pdn_sparse::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (the CG direction update).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum absolute entry (∞-norm).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Packs `k` equal-length vectors into the interleaved multi-RHS layout used
/// by the batched solvers: entry `i` of vector `t` lands at `dst[i * k + t]`.
///
/// # Panics
///
/// Panics if `srcs` is empty, the sources differ in length, or `dst` is not
/// exactly `len * k` long.
pub fn interleave(srcs: &[&[f64]], dst: &mut [f64]) {
    let k = srcs.len();
    assert!(k > 0, "interleave: no sources");
    let n = srcs[0].len();
    assert!(srcs.iter().all(|s| s.len() == n), "interleave: ragged sources");
    assert_eq!(dst.len(), n * k, "interleave: dst length mismatch");
    for (t, src) in srcs.iter().enumerate() {
        for (i, &v) in src.iter().enumerate() {
            dst[i * k + t] = v;
        }
    }
}

/// Extracts vector `t` from the interleaved multi-RHS layout.
///
/// # Panics
///
/// Panics if `k == 0`, `t >= k`, `src.len()` is not a multiple of `k`, or
/// `dst` has the wrong length.
pub fn deinterleave_into(src: &[f64], k: usize, t: usize, dst: &mut [f64]) {
    assert!(k > 0 && t < k, "deinterleave: bad vector index {t} of {k}");
    assert_eq!(src.len() % k, 0, "deinterleave: src not a multiple of k");
    assert_eq!(dst.len(), src.len() / k, "deinterleave: dst length mismatch");
    for (i, d) in dst.iter_mut().enumerate() {
        *d = src[i * k + t];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn xpby_updates_direction() {
        let mut p = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 4.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_length() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
