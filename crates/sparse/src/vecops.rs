//! Small dense-vector kernels shared by the iterative solvers.

/// Dot product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(pdn_sparse::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y` (the CG direction update).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum absolute entry (∞-norm).
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn xpby_updates_direction() {
        let mut p = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 4.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_length() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
