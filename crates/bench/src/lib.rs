//! Shared fixtures for the benchmark suite.
//!
//! Every bench target regenerates one of the paper's tables or figures at
//! test (`Tiny`) scale in its setup — so `cargo bench` both measures the
//! headline operations (simulation, inference, compression) and prints the
//! corresponding artifact — while the full-scale artifacts come from
//! `cargo run -p pdn-eval --release --bin experiments`.

use pdn_eval::harness::{EvaluatedDesign, ExperimentConfig, PreparedDesign};
use pdn_grid::build::PowerGrid;
use pdn_grid::design::{DesignPreset, DesignScale};
use pdn_vectors::generator::{GeneratorConfig, VectorGenerator};
use pdn_vectors::vector::TestVector;

/// The bench-scale experiment configuration (Tiny designs, short traces).
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::quick()
}

/// Builds a Tiny-scale grid for a preset with the bench seed.
pub fn bench_grid(preset: DesignPreset) -> PowerGrid {
    preset.spec(DesignScale::Tiny).build(bench_config().seed).expect("preset valid")
}

/// One random vector of `steps` stamps for a grid.
pub fn bench_vector(grid: &PowerGrid, steps: usize) -> TestVector {
    let gen = VectorGenerator::new(grid, GeneratorConfig { steps, ..Default::default() });
    gen.generate(1)
}

/// A prepared (simulated) Tiny design.
pub fn bench_prepared(preset: DesignPreset) -> PreparedDesign {
    PreparedDesign::prepare(preset, &bench_config()).expect("prepare")
}

/// A fully evaluated (trained) Tiny design.
pub fn bench_evaluated(preset: DesignPreset) -> EvaluatedDesign {
    EvaluatedDesign::evaluate(preset, &bench_config()).expect("evaluate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let grid = bench_grid(DesignPreset::D1);
        let v = bench_vector(&grid, 20);
        assert_eq!(v.load_count(), grid.loads().len());
    }
}
