//! Table 1 bench: the ground-truth WNV simulation per design — the
//! operation whose cost motivates the whole paper. Prints the regenerated
//! Table 1 (bench scale) once.

use criterion::{criterion_group, criterion_main, Criterion};
use pdn_bench::{bench_config, bench_grid, bench_vector};
use pdn_eval::experiments::table1;
use pdn_eval::harness::PreparedDesign;
use pdn_grid::design::DesignPreset;
use pdn_sim::wnv::WnvRunner;

fn bench_wnv_simulation(c: &mut Criterion) {
    // Regenerate the table once so the artifact appears in the bench log.
    let cfg = bench_config();
    let prepared: Vec<PreparedDesign> = DesignPreset::ALL
        .iter()
        .map(|p| PreparedDesign::prepare(*p, &cfg).expect("prepare"))
        .collect();
    let refs: Vec<&PreparedDesign> = prepared.iter().collect();
    println!("\nTable 1 (bench scale):\n{}", table1::run(&refs));

    let mut group = c.benchmark_group("table1_wnv_simulation");
    group.sample_size(10);
    for preset in DesignPreset::ALL {
        let grid = bench_grid(preset);
        let runner = WnvRunner::new(&grid).expect("runner");
        let vector = bench_vector(&grid, 60);
        group.bench_function(preset.name(), |b| {
            b.iter(|| runner.run(&vector).expect("simulate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wnv_simulation);
criterion_main!(benches);
