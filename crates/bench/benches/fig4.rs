//! Fig. 4 bench: producing the whole-die predicted noise map for D1–D3 —
//! the "one-time execution" claim of the paper (no region-by-region
//! scanning). Prints the regenerated panels (bench scale) once.

use criterion::{criterion_group, criterion_main, Criterion};
use pdn_bench::{bench_evaluated, bench_vector};
use pdn_eval::experiments::fig4;
use pdn_grid::design::DesignPreset;

fn bench_noise_map_prediction(c: &mut Criterion) {
    let mut evals: Vec<_> = [DesignPreset::D1, DesignPreset::D2, DesignPreset::D3]
        .iter()
        .map(|p| bench_evaluated(*p))
        .collect();
    {
        let refs: Vec<&_> = evals.iter().collect();
        println!("\nFig. 4 (bench scale):\n{}", fig4::run(&refs));
    }

    let mut group = c.benchmark_group("fig4_noise_map_prediction");
    group.sample_size(10);
    for eval in &mut evals {
        let name = eval.prepared.preset.name();
        let grid = eval.prepared.grid.clone();
        let vector = bench_vector(&grid, 60);
        group.bench_function(name, |b| b.iter(|| eval.predictor.predict(&grid, &vector)));
    }
    group.finish();
}

criterion_group!(benches, bench_noise_map_prediction);
criterion_main!(benches);
