//! Fig. 6 bench: temporal compression — Algorithm 1's own cost (optimized
//! vs literal reference implementation) and the inference cost as a
//! function of the compression rate (Fig. 6b's near-linear curve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdn_bench::{bench_evaluated, bench_vector};
use pdn_compress::temporal::TemporalCompressor;
use pdn_core::rng;
use pdn_grid::design::DesignPreset;
use rand::Rng as _;

fn bursty_totals(n: usize) -> Vec<f64> {
    let mut rng = rng::seeded(42);
    (0..n)
        .map(|_| if rng.gen_bool(0.15) { rng.gen_range(5.0..10.0) } else { rng.gen_range(0.0..1.0) })
        .collect()
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_algorithm1");
    for n in [300usize, 3000] {
        let totals = bursty_totals(n);
        let comp = TemporalCompressor::new(0.3, 0.05).expect("valid");
        group.bench_with_input(BenchmarkId::new("optimized", n), &totals, |b, t| {
            b.iter(|| comp.compress(t))
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &totals, |b, t| {
            b.iter(|| comp.compress_reference(t))
        });
    }
    group.finish();
}

fn bench_inference_vs_rate(c: &mut Criterion) {
    let mut eval = bench_evaluated(DesignPreset::D1);
    let grid = eval.prepared.grid.clone();
    let vector = bench_vector(&grid, 60);
    let mut group = c.benchmark_group("fig6_inference_vs_rate");
    group.sample_size(10);
    for rate in [0.1, 0.3, 0.6, 1.0] {
        // Swap the predictor's compressor for each rate.
        let cfg = pdn_bench::bench_config();
        let compressor = TemporalCompressor::new(rate, cfg.rate_step).expect("valid");
        let mut predictor = pdn_model::model::Predictor::new(
            std::mem::replace(
                eval.predictor.model_mut(),
                pdn_model::model::WnvModel::new(grid.bumps().len(), cfg.model, 0),
            ),
            &eval.dataset,
            Some(compressor),
        );
        group.bench_function(format!("rate_{rate}"), |b| {
            b.iter(|| predictor.predict(&grid, &vector))
        });
        // Put the trained model back for the next rate.
        *eval.predictor.model_mut() = std::mem::replace(
            predictor.model_mut(),
            pdn_model::model::WnvModel::new(grid.bumps().len(), cfg.model, 0),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm1, bench_inference_vs_rate);
criterion_main!(benches);
