//! Fig. 5 bench: the error-analysis post-processing on D4 — per-tile
//! RE maps, histograms and the hotspot metrics. Prints the regenerated
//! Fig. 5 summary (bench scale) once.

use criterion::{criterion_group, criterion_main, Criterion};
use pdn_bench::bench_evaluated;
use pdn_eval::experiments::fig5;
use pdn_eval::metrics::{pooled_auc, pooled_error_stats, pooled_missing_rate};
use pdn_grid::design::DesignPreset;

fn bench_error_analysis(c: &mut Criterion) {
    let eval = bench_evaluated(DesignPreset::D4);
    let fig = fig5::run(&eval);
    println!("\nFig. 5 (bench scale):\n{fig}");

    let thr = eval.prepared.grid.spec().hotspot_threshold();
    let pairs = eval.test_pairs.clone();
    let mut group = c.benchmark_group("fig5_error_analysis");
    group.bench_function("re_histogram_and_maps", |b| b.iter(|| fig5::run(&eval)));
    group.bench_function("pooled_error_stats", |b| b.iter(|| pooled_error_stats(&pairs)));
    group.bench_function("hotspot_auc", |b| b.iter(|| pooled_auc(&pairs, thr)));
    group.bench_function("missing_rate", |b| b.iter(|| pooled_missing_rate(&pairs, thr)));
    group.finish();
}

criterion_group!(benches, bench_error_analysis);
criterion_main!(benches);
