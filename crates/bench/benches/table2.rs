//! Table 2 bench: simulator vs proposed-framework runtime per vector —
//! the speedup measurement of the paper's headline claim. Prints the
//! regenerated Table 2 (bench scale) once.

use criterion::{criterion_group, criterion_main, Criterion};
use pdn_bench::{bench_evaluated, bench_vector};
use pdn_eval::experiments::table2;
use pdn_grid::design::DesignPreset;
use pdn_sim::wnv::WnvRunner;

fn bench_simulator_vs_predictor(c: &mut Criterion) {
    // Train on D1 at bench scale, print its Table 2 row.
    let mut eval = bench_evaluated(DesignPreset::D1);
    println!("\nTable 2 (bench scale, D1):\n{}", table2::run(&[&eval]));

    let vector = bench_vector(&eval.prepared.grid, 60);
    let runner = WnvRunner::new(&eval.prepared.grid).expect("runner");

    let mut group = c.benchmark_group("table2_runtime_per_vector");
    group.sample_size(10);
    group.bench_function("commercial_simulator", |b| {
        b.iter(|| runner.run(&vector).expect("simulate"))
    });
    let grid = eval.prepared.grid.clone();
    group.bench_function("proposed_framework", |b| {
        b.iter(|| eval.predictor.predict(&grid, &vector))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator_vs_predictor);
criterion_main!(benches);
