//! Component microbenchmarks: the substrate operations every experiment is
//! built from — sparse solves, stamping, convolution kernels, feature
//! extraction. These are the ablation knobs DESIGN.md calls out (solver
//! choice, preconditioner, conv cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdn_bench::{bench_grid, bench_vector};
use pdn_grid::design::DesignPreset;
use pdn_grid::stamp;
use pdn_nn::conv::{Conv2d, Padding};
use pdn_nn::deconv::ConvTranspose2d;
use pdn_nn::layer::Layer;
use pdn_nn::tensor::Tensor;
use pdn_sparse::cg::{self, CgOptions, IdentityPreconditioner, JacobiPreconditioner};
use pdn_sparse::cholesky::SparseCholesky;
use pdn_sparse::ichol::IncompleteCholesky;
use pdn_sparse::mindeg::minimum_degree;
use pdn_sparse::ordering::reverse_cuthill_mckee;

fn bench_sparse_solvers(c: &mut Criterion) {
    let grid = bench_grid(DesignPreset::D4);
    let mut coo = stamp::conductance_coo(&grid);
    for b in grid.bumps() {
        coo.push(b.node.index(), b.node.index(), 1.0 / b.resistance.0);
    }
    let a = coo.to_csr();
    let rhs: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 7) as f64 - 3.0) * 1e-3).collect();
    let opts = CgOptions { tolerance: 1e-8, max_iterations: 20_000 };

    let mut group = c.benchmark_group("components_sparse");
    group.sample_size(10);
    group.bench_function("ic0_factorization", |b| {
        b.iter(|| IncompleteCholesky::factor(&a).expect("spd"))
    });
    let ic0 = IncompleteCholesky::factor(&a).expect("spd");
    let jacobi = JacobiPreconditioner::new(&a).expect("spd");
    group.bench_function("cg_ic0", |b| b.iter(|| cg::solve(&a, &rhs, &ic0, &opts).expect("ok")));
    group.bench_function("cg_jacobi", |b| {
        b.iter(|| cg::solve(&a, &rhs, &jacobi, &opts).expect("ok"))
    });
    group.bench_function("cg_identity", |b| {
        b.iter(|| cg::solve(&a, &rhs, &IdentityPreconditioner, &opts).expect("ok"))
    });
    let x = vec![1.0; a.n_cols()];
    group.bench_function("spmv", |b| b.iter(|| a.mul_vec(&x)));
    // Fill-reducing orderings ahead of the direct factorization.
    group.bench_function("ordering_rcm", |b| b.iter(|| reverse_cuthill_mckee(&a)));
    group.bench_function("ordering_mindeg", |b| b.iter(|| minimum_degree(&a)));
    let rcm_fill =
        SparseCholesky::factor(&a.permute_symmetric(&reverse_cuthill_mckee(&a))).expect("spd").nnz();
    let md_fill =
        SparseCholesky::factor(&a.permute_symmetric(&minimum_degree(&a))).expect("spd").nnz();
    println!("\ndirect-factor fill-in: rcm {rcm_fill} nnz, min-degree {md_fill} nnz");
    group.finish();
}

fn bench_transient_solver_choice(c: &mut Criterion) {
    // The repeated-solve trade-off of paper §2: direct factorization vs
    // warm-started iterative CG over a full transient run.
    use pdn_sim::transient::{SolverKind, TransientSimulator};
    let grid = bench_grid(DesignPreset::D4);
    let vector = bench_vector(&grid, 60);
    let cg_sim = TransientSimulator::new(&grid).expect("cg");
    let direct_sim =
        TransientSimulator::with_solver(&grid, SolverKind::DirectCholesky).expect("direct");
    let mut group = c.benchmark_group("components_transient_solver");
    group.sample_size(10);
    group.bench_function("iterative_cg", |b| {
        b.iter(|| cg_sim.run_with(&vector, |_, _| {}).expect("run"))
    });
    group.bench_function("direct_cholesky", |b| {
        b.iter(|| direct_sim.run_with(&vector, |_, _| {}).expect("run"))
    });
    group.bench_function("direct_factorization_setup", |b| {
        b.iter(|| TransientSimulator::with_solver(&grid, SolverKind::DirectCholesky).expect("ok"))
    });
    group.finish();
}

fn bench_stamping_and_features(c: &mut Criterion) {
    let grid = bench_grid(DesignPreset::D4);
    let vector = bench_vector(&grid, 60);
    let mut group = c.benchmark_group("components_features");
    group.bench_function("stamp_conductance", |b| b.iter(|| stamp::conductance_coo(&grid)));
    group.bench_function("tile_current_maps", |b| {
        b.iter(|| pdn_compress::spatial::tile_current_maps(&grid, &vector))
    });
    group.bench_function("distance_tensor", |b| {
        b.iter(|| pdn_features::distance::distance_tensor(&grid))
    });
    group.finish();
}

fn bench_conv_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("components_conv");
    for size in [24usize, 48] {
        let x = Tensor::filled(&[8, size, size], 0.5);
        let mut conv = Conv2d::new(8, 8, 3, 1, Padding::Replication, 1);
        group.bench_with_input(BenchmarkId::new("conv3x3_fwd", size), &x, |b, x| {
            b.iter(|| conv.forward(x))
        });
        let y = conv.forward(&x);
        group.bench_with_input(BenchmarkId::new("conv3x3_bwd", size), &y, |b, y| {
            b.iter(|| conv.backward(y))
        });
        let xe = Tensor::filled(&[8, size / 2, size / 2], 0.5);
        let mut deconv = ConvTranspose2d::new(8, 8, 4, 2, 1, 2);
        group.bench_with_input(BenchmarkId::new("deconv4x4_fwd", size), &xe, |b, x| {
            b.iter(|| deconv.forward(x))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sparse_solvers,
    bench_transient_solver_choice,
    bench_stamping_and_features,
    bench_conv_kernels
);
criterion_main!(benches);
