//! Component microbenchmarks: the substrate operations every experiment is
//! built from — sparse solves, stamping, convolution kernels, feature
//! extraction. These are the ablation knobs DESIGN.md calls out (solver
//! choice, preconditioner, conv cost).

use criterion::{criterion_group, BenchmarkId, Criterion};
use pdn_bench::{bench_grid, bench_vector};
use pdn_grid::design::DesignPreset;
use pdn_grid::stamp;
use pdn_nn::activation::Relu;
use pdn_nn::conv::{Conv2d, Padding};
use pdn_nn::deconv::ConvTranspose2d;
use pdn_nn::layer::Layer;
use pdn_nn::linalg::{self, reference, GemmScratch};
use pdn_nn::linalg_i8::{self, I8GemmScratch};
use pdn_nn::quant::{self, Precision, QuantizedMatrix};
use pdn_nn::tensor::Tensor;
use pdn_sparse::cg::{self, CgOptions, IdentityPreconditioner, JacobiPreconditioner};
use pdn_sparse::cholesky::SparseCholesky;
use pdn_sparse::ichol::IncompleteCholesky;
use pdn_sparse::mindeg::minimum_degree;
use pdn_sparse::ordering::reverse_cuthill_mckee;
use pdn_sparse::supernodal::{FillOrdering, SupernodalCholesky, SymbolicCholesky};
use pdn_vectors::generator::{GeneratorConfig, VectorGenerator};
use pdn_vectors::vector::TestVector;

fn bench_sparse_solvers(c: &mut Criterion) {
    let grid = bench_grid(DesignPreset::D4);
    let mut coo = stamp::conductance_coo(&grid);
    for b in grid.bumps() {
        coo.push(b.node.index(), b.node.index(), 1.0 / b.resistance.0);
    }
    let a = coo.to_csr();
    let rhs: Vec<f64> = (0..a.n_rows()).map(|i| ((i % 7) as f64 - 3.0) * 1e-3).collect();
    let opts = CgOptions { tolerance: 1e-8, max_iterations: 20_000 };

    let mut group = c.benchmark_group("components_sparse");
    group.sample_size(10);
    group.bench_function("ic0_factorization", |b| {
        b.iter(|| IncompleteCholesky::factor(&a).expect("spd"))
    });
    let ic0 = IncompleteCholesky::factor(&a).expect("spd");
    let jacobi = JacobiPreconditioner::new(&a).expect("spd");
    group.bench_function("cg_ic0", |b| b.iter(|| cg::solve(&a, &rhs, &ic0, &opts).expect("ok")));
    group.bench_function("cg_jacobi", |b| {
        b.iter(|| cg::solve(&a, &rhs, &jacobi, &opts).expect("ok"))
    });
    group.bench_function("cg_identity", |b| {
        b.iter(|| cg::solve(&a, &rhs, &IdentityPreconditioner, &opts).expect("ok"))
    });
    let x = vec![1.0; a.n_cols()];
    group.bench_function("spmv", |b| b.iter(|| a.mul_vec(&x)));
    // Multi-RHS SpMV: one matrix traversal serves four interleaved vectors.
    let k_rhs = 4;
    let xm = vec![1.0; a.n_cols() * k_rhs];
    let mut ym = vec![0.0; a.n_rows() * k_rhs];
    group.bench_function("spmv_multi4", |b| b.iter(|| a.mul_multi_into(&xm, k_rhs, &mut ym)));
    // Fill-reducing orderings ahead of the direct factorization.
    group.bench_function("ordering_rcm", |b| b.iter(|| reverse_cuthill_mckee(&a)));
    group.bench_function("ordering_mindeg", |b| b.iter(|| minimum_degree(&a)));
    let rcm_fill =
        SparseCholesky::factor(&a.permute_symmetric(&reverse_cuthill_mckee(&a))).expect("spd").nnz();
    let md_fill =
        SparseCholesky::factor(&a.permute_symmetric(&minimum_degree(&a))).expect("spd").nnz();
    println!("\ndirect-factor fill-in: rcm {rcm_fill} nnz, min-degree {md_fill} nnz");

    // Simplicial vs supernodal numeric factorization. The Tiny-scale
    // matrix above is too small for panels to pay off, so these entries
    // use a Ci-scale grid (~21 k nodes) — still fast enough for quick
    // mode, big enough that the factor is GEMM-bound. Both sides use the
    // same min-degree ordering (the simplicial factor consumes the
    // permuted matrix, the supernodal analysis is forced to min-degree),
    // so the delta isolates the numeric phase's panel restructuring.
    let grid_ci = DesignPreset::D4.spec(pdn_grid::design::DesignScale::Ci).build(7).expect("ci");
    let mut coo_ci = stamp::conductance_coo(&grid_ci);
    for b in grid_ci.bumps() {
        coo_ci.push(b.node.index(), b.node.index(), 1.0 / b.resistance.0);
    }
    let a = coo_ci.to_csr();
    let md_perm = minimum_degree(&a);
    let a_md = a.permute_symmetric(&md_perm);
    group.bench_function("cholesky_factor_simplicial", |b| {
        b.iter(|| SparseCholesky::factor(&a_md).expect("spd"))
    });
    let sym = std::sync::Arc::new(
        SymbolicCholesky::analyze_with(&a, FillOrdering::MinimumDegree).expect("spd"),
    );
    group.bench_function("cholesky_factor_supernodal", |b| {
        b.iter(|| SupernodalCholesky::factor_with(sym.clone(), &a).expect("spd"))
    });
    // AMD on the same Ci-scale matrix: the quotient-graph ordering plus
    // its symbolic analysis (the pair `analyze` runs per candidate), and
    // the numeric factor it produces.
    group.bench_function("cholesky_analyze_amd", |b| {
        b.iter(|| SymbolicCholesky::analyze_with(&a, FillOrdering::Amd).expect("spd"))
    });
    let sym_amd =
        std::sync::Arc::new(SymbolicCholesky::analyze_with(&a, FillOrdering::Amd).expect("spd"));
    group.bench_function("cholesky_factor_amd", |b| {
        b.iter(|| SupernodalCholesky::factor_with(sym_amd.clone(), &a).expect("spd"))
    });
    // Blocked multi-RHS solve vs K sequential single-vector solves against
    // the same factor (K = 16, the transient batch width that matters).
    let chol = SupernodalCholesky::factor_with(sym.clone(), &a).expect("spd");
    let k_sweep = 16usize;
    let n = a.n_rows();
    let rhs16: Vec<f64> =
        (0..k_sweep * n).map(|i| (((i / n) * 17 + (i % n) * 31) % 101) as f64 * 1e-4).collect();
    group.bench_function("cholesky_solve_seq16", |b| {
        b.iter(|| {
            let mut xs = rhs16.clone();
            for x in xs.chunks_mut(n) {
                chol.solve_in_place(x);
            }
            xs
        })
    });
    group.bench_function("cholesky_solve_multi", |b| {
        b.iter(|| {
            let mut xs = rhs16.clone();
            chol.solve_sweep(&mut xs, k_sweep);
            xs
        })
    });
    group.finish();
}

fn bench_transient_solver_choice(c: &mut Criterion) {
    // The repeated-solve trade-off of paper §2: direct factorization vs
    // warm-started iterative CG over a full transient run.
    use pdn_sim::transient::{SolverKind, TransientSimulator};
    let grid = bench_grid(DesignPreset::D4);
    let vector = bench_vector(&grid, 60);
    let cg_sim = TransientSimulator::new(&grid).expect("cg");
    let direct_sim =
        TransientSimulator::with_solver(&grid, SolverKind::DirectCholesky).expect("direct");
    let mut group = c.benchmark_group("components_transient_solver");
    group.sample_size(10);
    group.bench_function("iterative_cg", |b| {
        b.iter(|| cg_sim.run_with(&vector, |_, _| {}).expect("run"))
    });
    group.bench_function("direct_cholesky", |b| {
        b.iter(|| direct_sim.run_with(&vector, |_, _| {}).expect("run"))
    });
    group.bench_function("direct_factorization_setup", |b| {
        b.iter(|| TransientSimulator::with_solver(&grid, SolverKind::DirectCholesky).expect("ok"))
    });
    // Batched multi-RHS marching vs one run per vector: the same four
    // transients, solved against the single shared factorization.
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps: 60, ..Default::default() });
    let vecs: Vec<TestVector> = (0..4).map(|s| gen.generate(s)).collect();
    let refs: Vec<&TestVector> = vecs.iter().collect();
    group.bench_function("transient_4x_sequential", |b| {
        b.iter(|| {
            for v in &vecs {
                cg_sim.run_with(v, |_, _| {}).expect("run");
            }
        })
    });
    group.bench_function("transient_4x_batched", |b| {
        b.iter(|| cg_sim.run_batch_with(&refs, |_, _, _| {}).expect("run"))
    });
    group.finish();
}

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("components_gemm");
    group.sample_size(10);
    // First shape is the conv-forward GEMM at the acceptance point
    // (64×64 input, C=8, k=3): [8 × 72] · [72 × 4096].
    for (m, k, n) in [(8usize, 72usize, 4096usize), (64, 576, 1024), (128, 128, 128)] {
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1 - 0.6).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.2 - 0.7).collect();
        let mut cbuf = vec![0.0f32; m * n];
        let mut scratch = GemmScratch::new();
        let id = format!("{m}x{k}x{n}");
        group.bench_function(BenchmarkId::new("gemm_naive", &id), |bch| {
            bch.iter(|| reference::gemm(m, k, n, &a, &b, &mut cbuf))
        });
        group.bench_function(BenchmarkId::new("gemm_blocked", &id), |bch| {
            bch.iter(|| linalg::gemm_with(m, k, n, &a, &b, &mut cbuf, &mut scratch))
        });
    }
    group.finish();
}

fn bench_gemm_i8_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("components_gemm_i8");
    group.sample_size(10);
    // Same conv-shaped operands as `components_gemm`: A plays the per-row
    // quantized weights, B the activations. `gemm_i8` benches the kernel
    // over a pre-quantized B (the direct analogue of `gemm_blocked` on f32
    // operands); `gemm_i8_dyn` is the full inference path — B quantized
    // dynamically on the fly, dequantization included — and `quantize_act`
    // isolates that dynamic-quantization cost.
    for (m, k, n) in [(8usize, 72usize, 4096usize), (64, 576, 1024)] {
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1 - 0.6).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.2 - 0.7).collect();
        let qa = QuantizedMatrix::quantize_rows(m, k, &a);
        let mut qb = Vec::new();
        let qb_scale = quant::quantize_dynamic(&b, &mut qb);
        let mut cbuf = vec![0.0f32; m * n];
        let mut scratch = I8GemmScratch::new();
        let id = format!("{m}x{k}x{n}");
        group.bench_function(BenchmarkId::new("gemm_i8", &id), |bch| {
            bch.iter(|| {
                linalg_i8::gemm_i8_with(
                    m,
                    k,
                    n,
                    qa.data(),
                    qa.scales(),
                    &qb,
                    qb_scale,
                    &mut cbuf,
                    &mut scratch,
                )
            })
        });
        group.bench_function(BenchmarkId::new("gemm_i8_dyn", &id), |bch| {
            bch.iter(|| {
                linalg_i8::gemm_i8_f32b_with(
                    m,
                    k,
                    n,
                    qa.data(),
                    qa.scales(),
                    &b,
                    &mut cbuf,
                    &mut scratch,
                )
            })
        });
        let mut q = Vec::new();
        group.bench_function(BenchmarkId::new("quantize_act", &id), |bch| {
            bch.iter(|| quant::quantize_dynamic(&b, &mut q))
        });
    }
    group.finish();
}

fn bench_stamping_and_features(c: &mut Criterion) {
    let grid = bench_grid(DesignPreset::D4);
    let vector = bench_vector(&grid, 60);
    let mut group = c.benchmark_group("components_features");
    group.bench_function("stamp_conductance", |b| b.iter(|| stamp::conductance_coo(&grid)));
    group.bench_function("tile_current_maps", |b| {
        b.iter(|| pdn_compress::spatial::tile_current_maps(&grid, &vector))
    });
    group.bench_function("distance_tensor", |b| {
        b.iter(|| pdn_features::distance::distance_tensor(&grid))
    });
    group.finish();
}

/// The seed's conv forward pass, reproduced verbatim as the "before" side
/// of the kernel comparison: replication padding + im2col into a freshly
/// allocated buffer + the naive triple-loop GEMM + bias.
fn seed_conv_forward(weight: &[f32], bias: &[f32], x: &Tensor, k: usize) -> Vec<f32> {
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let out_ch = bias.len();
    let p = k / 2;
    let (hp, wp) = (h + 2 * p, w + 2 * p);
    let mut padded = vec![0.0f32; c * hp * wp];
    for ci in 0..c {
        let src = x.channel(ci);
        for hh in 0..hp {
            for ww in 0..wp {
                let sh = hh.saturating_sub(p).min(h - 1);
                let sw = ww.saturating_sub(p).min(w - 1);
                padded[(ci * hp + hh) * wp + ww] = src[sh * w + sw];
            }
        }
    }
    let rows = c * k * k;
    let cols_n = h * w;
    let mut cols = vec![0.0f32; rows * cols_n];
    for ci in 0..c {
        for kh in 0..k {
            for kw in 0..k {
                let row = (ci * k + kh) * k + kw;
                let dst = &mut cols[row * cols_n..(row + 1) * cols_n];
                for oh in 0..h {
                    let src_base = (ci * hp + oh + kh) * wp + kw;
                    for ow in 0..w {
                        dst[oh * w + ow] = padded[src_base + ow];
                    }
                }
            }
        }
    }
    let mut out = vec![0.0f32; out_ch * cols_n];
    reference::gemm(out_ch, rows, cols_n, weight, &cols, &mut out);
    for (o, b) in bias.iter().enumerate() {
        for v in &mut out[o * cols_n..(o + 1) * cols_n] {
            *v += b;
        }
    }
    out
}

fn bench_conv_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("components_conv");
    for size in [24usize, 48, 64] {
        let x = Tensor::filled(&[8, size, size], 0.5);
        let mut conv = Conv2d::new(8, 8, 3, 1, Padding::Replication, 1);
        group.bench_with_input(BenchmarkId::new("conv3x3_fwd", size), &x, |b, x| {
            b.iter(|| conv.forward(x))
        });
        if size == 64 {
            // Before/after at the acceptance shape: the pre-overhaul
            // forward path (fresh buffers + naive GEMM) on identical data.
            let weight = conv.weight_mut().value.as_slice().to_vec();
            let bias = conv.bias_mut().value.as_slice().to_vec();
            group.bench_with_input(BenchmarkId::new("conv3x3_fwd_naive", size), &x, |b, x| {
                b.iter(|| seed_conv_forward(&weight, &bias, x, 3))
            });
            // Fused conv+ReLU against the unfused alternative on the same
            // inference path (forward_infer, then a separate ReLU layer),
            // so the delta isolates the fusion itself; plus the int8 fast
            // path on top.
            let mut relu = Relu::new();
            let mut tmp = Tensor::zeros(&[1]);
            group.bench_with_input(
                BenchmarkId::new("conv3x3_relu_unfused", size),
                &x,
                |b, x| {
                    b.iter(|| {
                        conv.forward_infer(x, &mut tmp, false);
                        relu.forward(&tmp)
                    })
                },
            );
            let mut out = Tensor::zeros(&[1]);
            group.bench_with_input(BenchmarkId::new("conv3x3_relu_fused", size), &x, |b, x| {
                b.iter(|| conv.forward_infer(x, &mut out, true))
            });
            conv.set_precision(Precision::Int8);
            group.bench_with_input(
                BenchmarkId::new("conv3x3_relu_fused_int8", size),
                &x,
                |b, x| b.iter(|| conv.forward_infer(x, &mut out, true)),
            );
            conv.set_precision(Precision::F32);
        }
        let y = conv.forward(&x);
        group.bench_with_input(BenchmarkId::new("conv3x3_bwd", size), &y, |b, y| {
            b.iter(|| conv.backward(y))
        });
        let xe = Tensor::filled(&[8, size / 2, size / 2], 0.5);
        let mut deconv = ConvTranspose2d::new(8, 8, 4, 2, 1, 2);
        group.bench_with_input(BenchmarkId::new("deconv4x4_fwd", size), &xe, |b, x| {
            b.iter(|| deconv.forward(x))
        });
        let ye = deconv.forward(&xe);
        group.bench_with_input(BenchmarkId::new("deconv4x4_bwd", size), &ye, |b, y| {
            b.iter(|| deconv.backward(y))
        });
    }
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The contract `pdn serve` leans on: with telemetry disabled, every
    // instrumentation call is one relaxed atomic load. A single call sits
    // far below the bench gate's noise floor, so each iteration loops
    // 100k calls. Skipped when a PDN_TELEMETRY run enabled the registry —
    // the enabled path is a different (and unguarded) measurement.
    if pdn_core::telemetry::enabled() {
        return;
    }
    let mut group = c.benchmark_group("components_telemetry");
    group.bench_function("disabled_counter_add_100k", |b| {
        b.iter(|| {
            for i in 0..100_000u64 {
                pdn_core::telemetry::counter_add(criterion::black_box("bench.disabled.probe"), i & 1);
            }
        })
    });
    group.bench_function("disabled_span_100k", |b| {
        b.iter(|| {
            for _ in 0..100_000u64 {
                let s = pdn_core::telemetry::span(criterion::black_box("bench.disabled.span"));
                criterion::black_box(&s);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sparse_solvers,
    bench_transient_solver_choice,
    bench_gemm_kernels,
    bench_gemm_i8_kernels,
    bench_stamping_and_features,
    bench_conv_kernels,
    bench_telemetry_overhead
);

// Hand-rolled `criterion_main!` so the bench harness doubles as a telemetry
// emitter: with `PDN_TELEMETRY` set, the same run that writes the
// `BENCH_*.json` medians also dumps the solver/stepper counters behind them.
fn main() {
    pdn_core::telemetry::init_from_env();
    let mut c = Criterion::default();
    benches(&mut c);
    c.finalize();
    if pdn_core::telemetry::enabled() {
        pdn_core::telemetry::write_summary_records();
        pdn_core::telemetry::flush();
        eprintln!("{}", pdn_core::telemetry::summary());
    }
}
