//! Table 3 bench: whole-map inference runtime of the proposed model vs the
//! PowerNet baseline (the "runtime (s)" column). Prints the regenerated
//! Table 3 (bench scale) once.

use criterion::{criterion_group, criterion_main, Criterion};
use pdn_bench::bench_evaluated;
use pdn_eval::experiments::table3;
use pdn_grid::design::DesignPreset;
use pdn_powernet::model::PowerNetTrainConfig;
use pdn_powernet::{PowerNet, PowerNetConfig, PowerNetDataset};

fn bench_ours_vs_powernet(c: &mut Criterion) {
    let mut eval = bench_evaluated(DesignPreset::D4);
    let pn_cfg = PowerNetConfig { time_windows: 5, window: 7, channels: 4, seed: 1 };
    let pn_train = PowerNetTrainConfig {
        epochs: 3,
        tiles_per_epoch: 300,
        batch_size: 16,
        learning_rate: 2e-3,
        seed: 2,
    };
    println!("\nTable 3 (bench scale, D4):\n{}", table3::run(&eval, &pn_cfg, &pn_train));

    // Benchmark the two inference paths on the same test sample.
    let ds = PowerNetDataset::build(
        &eval.prepared.grid,
        &eval.prepared.vectors,
        &eval.prepared.reports,
        &pn_cfg,
    );
    let net = PowerNet::new(pn_cfg);
    let idx = eval.test_indices[0];
    let grid = eval.prepared.grid.clone();
    let vector = eval.prepared.vectors[idx].clone();

    let mut group = c.benchmark_group("table3_whole_map_inference");
    group.sample_size(10);
    group.bench_function("powernet_tile_scan", |b| b.iter(|| net.predict_sample(&ds, idx)));
    group.bench_function("ours_one_pass", |b| b.iter(|| eval.predictor.predict(&grid, &vector)));
    group.finish();
}

criterion_group!(benches, bench_ours_vs_powernet);
criterion_main!(benches);
