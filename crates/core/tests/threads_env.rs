//! Integration test for `PDN_THREADS` handling when the global rayon pool
//! was already built by an earlier caller.
//!
//! This lives in its own test binary because it manipulates three pieces of
//! process-global state — the rayon global pool, the `PDN_THREADS`
//! environment variable, and the telemetry registry — that must not race
//! with unrelated tests sharing the process.

use pdn_core::telemetry;
use pdn_core::threads::configure_from_env;

#[test]
fn ignored_env_request_is_warned_and_counted() {
    telemetry::reset();
    telemetry::enable();

    // An earlier component claims the global pool before configure_from_env
    // runs — the situation a long-lived daemon hits when a library eagerly
    // initializes rayon.
    rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build_global()
        .expect("first build_global in this process must succeed");

    std::env::set_var("PDN_THREADS", "2");
    let width = configure_from_env();

    // The established pool cannot be resized: the effective width is the
    // pre-built one, and the ignored request is counted (not dropped).
    assert_eq!(width, 3, "pre-built pool width must win");
    assert_eq!(
        telemetry::counter_value("core.threads.ignored_env"),
        1,
        "an unsatisfiable PDN_THREADS request must bump core.threads.ignored_env"
    );

    // The once-per-process latch means repeat calls neither re-warn nor
    // double-count.
    assert_eq!(configure_from_env(), 3);
    assert_eq!(telemetry::counter_value("core.threads.ignored_env"), 1);
}
