//! Property tests for the foundation types.

use pdn_core::geom::{Point, TileGrid};
use pdn_core::map::TileMap;
use pdn_core::stats;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tile_of_is_consistent_with_tile_rect(
        rows in 1usize..12,
        cols in 1usize..12,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let g = TileGrid::new(rows, cols, 120.0, 80.0);
        let p = Point::new(fx * 119.99, fy * 79.99);
        let t = g.tile_of(p);
        let rect = g.tile_rect(t);
        prop_assert!(rect.contains(p), "point {p:?} outside its tile rect {rect:?}");
    }

    #[test]
    fn tile_centers_map_back_to_their_tiles(rows in 1usize..10, cols in 1usize..10) {
        let g = TileGrid::new(rows, cols, 55.0, 33.0);
        for t in g.tiles() {
            prop_assert_eq!(g.tile_of(g.tile_center(t)), t);
        }
    }

    #[test]
    fn max_assign_is_commutative_and_idempotent(
        vals_a in prop::collection::vec(-5.0f64..5.0, 12),
        vals_b in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let a = TileMap::from_vec(3, 4, vals_a).unwrap();
        let b = TileMap::from_vec(3, 4, vals_b).unwrap();
        let mut ab = a.clone();
        ab.max_assign(&b);
        let mut ba = b.clone();
        ba.max_assign(&a);
        prop_assert_eq!(&ab, &ba);
        let mut again = ab.clone();
        again.max_assign(&b);
        prop_assert_eq!(again, ab);
    }

    #[test]
    fn map_add_sub_round_trip(
        vals_a in prop::collection::vec(-10.0f64..10.0, 9),
        vals_b in prop::collection::vec(-10.0f64..10.0, 9),
    ) {
        let a = TileMap::from_vec(3, 3, vals_a).unwrap();
        let b = TileMap::from_vec(3, 3, vals_b).unwrap();
        let back = &(&a + &b) - &b;
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        vals in prop::collection::vec(-100.0f64..100.0, 1..40),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&vals, lo);
        let b = stats::percentile(&vals, hi);
        prop_assert!(a <= b + 1e-12);
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }

    #[test]
    fn moments_match_batch_after_any_push_pop_sequence(
        xs in prop::collection::vec(-10.0f64..10.0, 2..20),
        drop in 0usize..5,
    ) {
        let drop = drop.min(xs.len() - 1);
        let mut m = stats::Moments::new();
        for &x in &xs {
            m.push(x);
        }
        for &x in xs.iter().take(drop) {
            m.pop(x);
        }
        let rest = &xs[drop..];
        prop_assert!((m.mean() - stats::mean(rest)).abs() < 1e-9);
        // σ from running sums suffers sqrt-amplified cancellation when a
        // pop leaves near-zero variance; tolerance reflects that.
        prop_assert!((m.std_dev() - stats::std_dev(rest)).abs() < 1e-5);
    }

    #[test]
    fn argsort_sorts(vals in prop::collection::vec(-50.0f64..50.0, 0..30)) {
        let idx = stats::argsort(&vals);
        prop_assert_eq!(idx.len(), vals.len());
        for w in idx.windows(2) {
            prop_assert!(vals[w[0]] <= vals[w[1]]);
        }
    }
}
