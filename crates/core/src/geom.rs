//! Layout geometry: points, rectangles and the die tiling.
//!
//! All coordinates are in micrometres (µm). The [`TileGrid`] realizes the
//! spatial compression of the paper's Eq. (2): the die is partitioned into an
//! `m × n` array of tiles and every per-node quantity is aggregated per tile.

use crate::error::{CoreError, Result};

/// A point on the die, in micrometres.
///
/// # Example
///
/// ```
/// use pdn_core::geom::Point;
/// let p = Point::new(3.0, 4.0);
/// assert_eq!(p.distance_to(Point::new(0.0, 0.0)), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (µm).
    pub x: f64,
    /// Vertical coordinate (µm).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance (cheaper when only comparisons are needed).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// An axis-aligned rectangle on the die, in micrometres.
///
/// # Example
///
/// ```
/// use pdn_core::geom::{Point, Rect};
/// let r = Rect::new(0.0, 0.0, 10.0, 20.0);
/// assert!(r.contains(Point::new(5.0, 5.0)));
/// assert_eq!(r.center(), Point::new(5.0, 10.0));
/// assert_eq!(r.area(), 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from its corners. Corners are normalized so that
    /// `x0 <= x1` and `y0 <= y1`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// Whether the point lies inside (edges inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }
}

/// Index of a tile inside a [`TileGrid`]: `(row, col)` with row 0 at the
/// bottom of the die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TileIndex {
    /// Row (y direction).
    pub row: usize,
    /// Column (x direction).
    pub col: usize,
}

impl TileIndex {
    /// Creates a tile index.
    pub fn new(row: usize, col: usize) -> TileIndex {
        TileIndex { row, col }
    }
}

/// Partition of the die into an `m × n` array of equal tiles.
///
/// This is the spatial-compression structure of the paper: instead of
/// predicting a voltage for each of millions of nodes, every quantity is
/// aggregated over tiles, reducing dimensions to `m × n` (paper §3.2).
///
/// # Example
///
/// ```
/// use pdn_core::geom::{Point, TileGrid, TileIndex};
///
/// let g = TileGrid::new(4, 5, 100.0, 80.0); // 4 rows x 5 cols
/// assert_eq!(g.len(), 20);
/// assert_eq!(g.tile_of(Point::new(0.0, 0.0)), TileIndex::new(0, 0));
/// assert_eq!(g.tile_of(Point::new(99.9, 79.9)), TileIndex::new(3, 4));
/// let c = g.tile_center(TileIndex::new(0, 0));
/// assert_eq!((c.x, c.y), (10.0, 10.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TileGrid {
    rows: usize,
    cols: usize,
    die_width: f64,
    die_height: f64,
}

impl TileGrid {
    /// Creates a tiling with `rows × cols` tiles over a die of
    /// `die_width × die_height` µm.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or non-positive.
    pub fn new(rows: usize, cols: usize, die_width: f64, die_height: f64) -> TileGrid {
        assert!(rows > 0 && cols > 0, "tile grid must be non-empty");
        assert!(
            die_width > 0.0 && die_height > 0.0,
            "die dimensions must be positive"
        );
        TileGrid { rows, cols, die_width, die_height }
    }

    /// Fallible constructor mirroring [`TileGrid::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDimension`] for zero tile counts and
    /// [`CoreError::OutOfDomain`] for non-positive or non-finite die
    /// dimensions.
    pub fn try_new(rows: usize, cols: usize, die_width: f64, die_height: f64) -> Result<TileGrid> {
        if rows == 0 {
            return Err(CoreError::EmptyDimension { what: "rows" });
        }
        if cols == 0 {
            return Err(CoreError::EmptyDimension { what: "cols" });
        }
        if die_width <= 0.0 || !die_width.is_finite() {
            return Err(CoreError::OutOfDomain { what: "die_width", value: die_width.to_string() });
        }
        if die_height <= 0.0 || !die_height.is_finite() {
            return Err(CoreError::OutOfDomain {
                what: "die_height",
                value: die_height.to_string(),
            });
        }
        Ok(TileGrid { rows, cols, die_width, die_height })
    }

    /// Number of tile rows (`m`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of tile columns (`n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles (`m · n`).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the grid has zero tiles. Always `false` by construction, but
    /// provided for API completeness alongside [`TileGrid::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Die width in µm.
    pub fn die_width(&self) -> f64 {
        self.die_width
    }

    /// Die height in µm.
    pub fn die_height(&self) -> f64 {
        self.die_height
    }

    /// Width of one tile in µm.
    pub fn tile_width(&self) -> f64 {
        self.die_width / self.cols as f64
    }

    /// Height of one tile in µm.
    pub fn tile_height(&self) -> f64 {
        self.die_height / self.rows as f64
    }

    /// The tile containing the given point. Points outside the die are
    /// clamped to the nearest boundary tile, so loads placed exactly on the
    /// die edge are never lost.
    pub fn tile_of(&self, p: Point) -> TileIndex {
        let col = ((p.x / self.tile_width()).floor() as isize).clamp(0, self.cols as isize - 1);
        let row = ((p.y / self.tile_height()).floor() as isize).clamp(0, self.rows as isize - 1);
        TileIndex::new(row as usize, col as usize)
    }

    /// Geometric bounds of a tile.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn tile_rect(&self, t: TileIndex) -> Rect {
        assert!(t.row < self.rows && t.col < self.cols, "tile index out of range");
        let w = self.tile_width();
        let h = self.tile_height();
        Rect::new(t.col as f64 * w, t.row as f64 * h, (t.col + 1) as f64 * w, (t.row + 1) as f64 * h)
    }

    /// Center point of a tile — the representative point used when computing
    /// the distance-to-bump feature (paper §3.3).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn tile_center(&self, t: TileIndex) -> Point {
        self.tile_rect(t).center()
    }

    /// Iterates over all tile indices in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileIndex> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |r| (0..cols).map(move |c| TileIndex::new(r, c)))
    }

    /// Flat row-major offset of a tile.
    pub fn flat_index(&self, t: TileIndex) -> usize {
        t.row * self.cols + t.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(10.0, 20.0, 0.0, 0.0);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0.0, 0.0, 10.0, 20.0));
    }

    #[test]
    fn tile_lookup_corners_and_clamping() {
        let g = TileGrid::new(3, 3, 30.0, 30.0);
        assert_eq!(g.tile_of(Point::new(-5.0, -5.0)), TileIndex::new(0, 0));
        assert_eq!(g.tile_of(Point::new(35.0, 35.0)), TileIndex::new(2, 2));
        assert_eq!(g.tile_of(Point::new(15.0, 25.0)), TileIndex::new(2, 1));
    }

    #[test]
    fn tile_rect_partition_covers_die() {
        let g = TileGrid::new(2, 2, 10.0, 10.0);
        let total: f64 = g.tiles().map(|t| g.tile_rect(t).area()).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tiles_iterate_row_major() {
        let g = TileGrid::new(2, 3, 1.0, 1.0);
        let v: Vec<_> = g.tiles().collect();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], TileIndex::new(0, 0));
        assert_eq!(v[1], TileIndex::new(0, 1));
        assert_eq!(v[3], TileIndex::new(1, 0));
        for (i, t) in v.iter().enumerate() {
            assert_eq!(g.flat_index(*t), i);
        }
    }

    #[test]
    fn try_new_rejects_bad_args() {
        assert!(TileGrid::try_new(0, 1, 1.0, 1.0).is_err());
        assert!(TileGrid::try_new(1, 0, 1.0, 1.0).is_err());
        assert!(TileGrid::try_new(1, 1, 0.0, 1.0).is_err());
        assert!(TileGrid::try_new(1, 1, 1.0, -1.0).is_err());
        assert!(TileGrid::try_new(1, 1, 1.0, 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "tile index out of range")]
    fn tile_rect_panics_out_of_range() {
        let g = TileGrid::new(2, 2, 1.0, 1.0);
        let _ = g.tile_rect(TileIndex::new(2, 0));
    }
}
