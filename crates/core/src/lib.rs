//! Foundation types shared by every crate in the `pdn-wnv` workspace.
//!
//! This crate contains the vocabulary of the whole system:
//!
//! * typed electrical [`units`] (volts, amps, ohms, farads, henries, seconds)
//!   so that a resistance can never be passed where a capacitance is expected;
//! * layout [`geom`]etry — points, rectangles and the [`TileGrid`] that
//!   partitions a die into the `m × n` tile array used throughout the paper
//!   (Eq. (2) of the DAC'22 paper);
//! * [`TileMap`], the dense `m × n` scalar map that carries current maps,
//!   distance maps and noise maps between crates;
//! * crash-safe [`fsio`] primitives — atomic write-temp-fsync-rename plus
//!   the dependency-free content digest that keys the ground-truth cache
//!   and seals checkpoints against torn reads;
//! * deterministic [`rng`] construction so every experiment is reproducible;
//! * process-wide [`threads`] configuration (the `PDN_THREADS` override);
//! * the [`telemetry`] registry — counters, gauges, histograms, scoped
//!   timers and a JSON-lines sink — that every hot path reports to when
//!   `PDN_TELEMETRY` (or the `pdn --telemetry` flag) is set;
//! * simple [`stats`] helpers (mean, standard deviation, percentile) used by
//!   the temporal-compression algorithm and the evaluation metrics.
//!
//! # Example
//!
//! ```
//! use pdn_core::geom::{Point, TileGrid};
//! use pdn_core::map::TileMap;
//!
//! // Partition a 1 mm x 1 mm die into 10 x 10 tiles.
//! let grid = TileGrid::new(10, 10, 1000.0, 1000.0);
//! let tile = grid.tile_of(Point::new(512.0, 17.0));
//! let mut map = TileMap::zeros(grid.rows(), grid.cols());
//! map[tile] += 1.0;
//! assert_eq!(map.sum(), 1.0);
//! ```

pub mod error;
pub mod fsio;
pub mod geom;
pub mod map;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod threads;
pub mod units;

pub use error::{CoreError, Result};
pub use geom::{Point, Rect, TileGrid, TileIndex};
pub use map::TileMap;
pub use units::{Amps, Farads, Henries, Ohms, Seconds, Volts};
