//! Scalar statistics used by the compression algorithm and the metrics.
//!
//! The paper's Algorithm 1 repeatedly evaluates `μ + 3σ` of current sums and
//! the evaluation section reports 99th-percentile errors; these helpers keep
//! those definitions in one place.

/// Arithmetic mean. Returns 0 for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(pdn_core::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (the `σ` of Algorithm 1, which divides by
/// `N`, not `N − 1`). Returns 0 for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `μ + 3σ` statistic that Algorithm 1 preserves when compressing a
/// current sequence.
pub fn mu_plus_3_sigma(xs: &[f64]) -> f64 {
    mean(xs) + 3.0 * std_dev(xs)
}

/// `p`-th percentile (0 ≤ p ≤ 100) with linear interpolation between ranks,
/// matching `numpy.percentile`'s default behaviour so paper-style "99 % AE"
/// numbers are comparable.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(pdn_core::stats::percentile(&xs, 50.0), 2.5);
/// assert_eq!(pdn_core::stats::percentile(&xs, 100.0), 4.0);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Indices that sort `xs` ascending — the `argsort` of Algorithm 1, line 7.
///
/// Ties keep their original relative order (stable sort) so the algorithm is
/// deterministic.
///
/// # Example
///
/// ```
/// assert_eq!(pdn_core::stats::argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
/// ```
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in argsort input"));
    idx
}

/// Running-moment accumulator allowing O(1) insertion/removal, used by the
/// optimized temporal-compression sweep.
///
/// # Example
///
/// ```
/// use pdn_core::stats::Moments;
/// let mut m = Moments::new();
/// m.push(1.0);
/// m.push(3.0);
/// assert_eq!(m.mean(), 2.0);
/// m.pop(1.0);
/// assert_eq!(m.mean(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: usize,
    sum: f64,
    sum_sq: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Moments {
        Moments::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Removes a previously added sample.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn pop(&mut self, x: f64) {
        assert!(self.n > 0, "pop from empty moments accumulator");
        self.n -= 1;
        self.sum -= x;
        self.sum_sq -= x * x;
    }

    /// Number of samples currently accumulated.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no samples are accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean of the accumulated samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population standard deviation of the accumulated samples (0 when
    /// empty). Clamps tiny negative variances produced by cancellation.
    pub fn std_dev(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var = (self.sum_sq / self.n as f64 - m * m).max(0.0);
        var.sqrt()
    }

    /// `μ + 3σ` of the accumulated samples.
    pub fn mu_plus_3_sigma(&self) -> f64 {
        self.mean() + 3.0 * self.std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((mu_plus_3_sigma(&xs) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 99.0), 49.6);
        assert_eq!(percentile(&xs, 100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn argsort_is_stable() {
        let xs = [2.0, 1.0, 2.0, 0.0];
        assert_eq!(argsort(&xs), vec![3, 1, 0, 2]);
    }

    #[test]
    fn moments_match_batch_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.len(), xs.len());
        assert!((m.mean() - mean(&xs)).abs() < 1e-12);
        assert!((m.std_dev() - std_dev(&xs)).abs() < 1e-12);
        m.pop(9.0);
        let trimmed = &xs[..7];
        assert!((m.mean() - mean(trimmed)).abs() < 1e-12);
        assert!((m.std_dev() - std_dev(trimmed)).abs() < 1e-12);
    }
}
