//! Error types for the foundation crate.

use std::fmt;

/// Convenient result alias used across `pdn-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by foundation types.
///
/// # Example
///
/// ```
/// use pdn_core::map::TileMap;
/// use pdn_core::CoreError;
///
/// let err = TileMap::from_vec(2, 3, vec![0.0; 5]).unwrap_err();
/// assert!(matches!(err, CoreError::ShapeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A buffer length did not match the requested shape.
    ShapeMismatch {
        /// Number of elements the shape implies.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A dimension was zero where a non-empty extent is required.
    EmptyDimension {
        /// Human-readable name of the offending argument.
        what: &'static str,
    },
    /// A numeric argument was outside its documented domain.
    OutOfDomain {
        /// Human-readable name of the offending argument.
        what: &'static str,
        /// The offending value, formatted by the caller.
        value: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} elements, got {actual}")
            }
            CoreError::EmptyDimension { what } => {
                write!(f, "{what} must be non-zero")
            }
            CoreError::OutOfDomain { what, value } => {
                write!(f, "{what} out of domain: {value}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = CoreError::ShapeMismatch { expected: 4, actual: 5 };
        let s = e.to_string();
        assert!(s.starts_with("shape mismatch"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
