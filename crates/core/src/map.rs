//! Dense `m × n` scalar maps over the tile grid.
//!
//! [`TileMap`] is the common currency between the simulator (worst-case noise
//! maps), the compression stage (per-time-stamp current maps `I[k]`), the
//! feature extractor (distance maps) and the CNN (inputs/targets).

use crate::error::{CoreError, Result};
use crate::geom::TileIndex;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense row-major `rows × cols` map of `f64` values.
///
/// # Example
///
/// ```
/// use pdn_core::map::TileMap;
/// use pdn_core::geom::TileIndex;
///
/// let mut m = TileMap::zeros(2, 2);
/// m[TileIndex::new(0, 1)] = 3.0;
/// m[TileIndex::new(1, 0)] = -1.0;
/// assert_eq!(m.max(), 3.0);
/// assert_eq!(m.min(), -1.0);
/// assert_eq!(m.sum(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TileMap {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl TileMap {
    /// Creates a map filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> TileMap {
        assert!(rows > 0 && cols > 0, "tile map must be non-empty");
        TileMap { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the degenerate zero-tile map. Regular construction
    /// ([`TileMap::zeros`], [`TileMap::from_vec`]) rejects empty dimensions,
    /// but boundary cases (a design with no analyzable tiles, defensive
    /// tests) need a representable empty value; iteration yields nothing
    /// and consumers must guard their divisions (see
    /// `NoiseReport::hotspot_ratio` in `pdn-sim`).
    pub fn empty() -> TileMap {
        TileMap { rows: 0, cols: 0, data: Vec::new() }
    }

    /// Creates a map filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> TileMap {
        assert!(rows > 0 && cols > 0, "tile map must be non-empty");
        TileMap { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a map from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `data.len() != rows * cols`
    /// and [`CoreError::EmptyDimension`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<TileMap> {
        if rows == 0 {
            return Err(CoreError::EmptyDimension { what: "rows" });
        }
        if cols == 0 {
            return Err(CoreError::EmptyDimension { what: "cols" });
        }
        if data.len() != rows * cols {
            return Err(CoreError::ShapeMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(TileMap { rows, cols, data })
    }

    /// Creates a map by evaluating `f(row, col)` for every tile.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> TileMap {
        let mut m = TileMap::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows (`m`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map has zero tiles (only [`TileMap::empty`] qualifies).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major view of the values.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major view of the values.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the map and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Value at `(row, col)`, or `None` when out of range.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "tile map index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Sum of all values (the `S[k]` of Algorithm 1 when applied to a
    /// current map).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum value. Empty maps cannot exist, so this is total.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Arithmetic mean of all values.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Index of the maximum value (first occurrence, row-major order).
    pub fn argmax(&self) -> TileIndex {
        let mut best = 0;
        for (i, v) in self.data.iter().enumerate() {
            if *v > self.data[best] {
                best = i;
            }
        }
        TileIndex::new(best / self.cols, best % self.cols)
    }

    /// Element-wise maximum with another map, in place. Used to accumulate
    /// the worst-case (max over time) noise map during transient simulation.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_assign(&mut self, other: &TileMap) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in max_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.max(*b);
        }
    }

    /// Applies a function to every element, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new map with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TileMap {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of tiles whose value is strictly above `threshold` — the
    /// hotspot count of the paper when applied to a noise map with the 10 %
    /// V<sub>nom</sub> threshold.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.data.iter().filter(|v| **v > threshold).count()
    }

    /// Iterates `(TileIndex, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (TileIndex, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (TileIndex::new(i / cols, i % cols), *v))
    }
}

impl Index<TileIndex> for TileMap {
    type Output = f64;

    fn index(&self, t: TileIndex) -> &f64 {
        assert!(t.row < self.rows && t.col < self.cols, "tile map index out of range");
        &self.data[t.row * self.cols + t.col]
    }
}

impl IndexMut<TileIndex> for TileMap {
    fn index_mut(&mut self, t: TileIndex) -> &mut f64 {
        assert!(t.row < self.rows && t.col < self.cols, "tile map index out of range");
        &mut self.data[t.row * self.cols + t.col]
    }
}

impl Add<&TileMap> for &TileMap {
    type Output = TileMap;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add(self, rhs: &TileMap) -> TileMap {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        TileMap { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&TileMap> for &TileMap {
    type Output = TileMap;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &TileMap) -> TileMap {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in sub");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        TileMap { rows: self.rows, cols: self.cols, data }
    }
}

impl AddAssign<&TileMap> for TileMap {
    /// Element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add_assign(&mut self, rhs: &TileMap) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul<f64> for &TileMap {
    type Output = TileMap;

    fn mul(self, rhs: f64) -> TileMap {
        let data = self.data.iter().map(|a| a * rhs).collect();
        TileMap { rows: self.rows, cols: self.cols, data }
    }
}

impl fmt::Display for TileMap {
    /// Compact textual rendering showing shape and extremes; full values are
    /// available through [`TileMap::as_slice`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TileMap {}x{} [min {:.4}, mean {:.4}, max {:.4}]",
            self.rows,
            self.cols,
            self.min(),
            self.mean(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TileMap {
        TileMap::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.0, 5.0, -1.0]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert_eq!(m.get(1, 1), Some(5.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(TileMap::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(TileMap::from_vec(0, 2, vec![]).is_err());
    }

    #[test]
    fn reductions() {
        let m = sample();
        assert_eq!(m.sum(), 6.0);
        assert_eq!(m.max(), 5.0);
        assert_eq!(m.min(), -2.0);
        assert_eq!(m.mean(), 1.0);
        assert_eq!(m.argmax(), TileIndex::new(1, 1));
        assert_eq!(m.count_above(0.5), 3);
    }

    #[test]
    fn max_assign_accumulates_worst_case() {
        let mut acc = TileMap::zeros(2, 2);
        let a = TileMap::from_vec(2, 2, vec![1.0, 0.0, 3.0, 0.0]).unwrap();
        let b = TileMap::from_vec(2, 2, vec![0.0, 2.0, 1.0, 0.5]).unwrap();
        acc.max_assign(&a);
        acc.max_assign(&b);
        assert_eq!(acc.as_slice(), &[1.0, 2.0, 3.0, 0.5]);
    }

    #[test]
    fn arithmetic() {
        let a = TileMap::filled(2, 2, 2.0);
        let b = TileMap::filled(2, 2, 3.0);
        assert_eq!((&a + &b).as_slice(), &[5.0; 4]);
        assert_eq!((&b - &a).as_slice(), &[1.0; 4]);
        assert_eq!((&a * 2.0).as_slice(), &[4.0; 4]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[5.0; 4]);
    }

    #[test]
    fn from_fn_row_major() {
        let m = TileMap::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn iter_yields_indices() {
        let m = sample();
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(collected[4], (TileIndex::new(1, 1), 5.0));
    }

    #[test]
    fn display_mentions_shape() {
        let s = sample().to_string();
        assert!(s.contains("2x3"));
    }
}
