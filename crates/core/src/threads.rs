//! Process-wide thread-pool configuration.
//!
//! Every parallel region in the workspace runs on rayon's global pool, so
//! one override point suffices: [`configure_from_env`] reads `PDN_THREADS`
//! and sizes the pool before any parallel work executes. Binaries call it
//! first thing in `main`; the first call wins because rayon's global pool
//! is immutable once built.

use std::sync::OnceLock;

static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// Sizes the global rayon pool from the `PDN_THREADS` environment variable
/// and returns the effective worker count.
///
/// `PDN_THREADS=<n>` with `n ≥ 1` requests an `n`-thread pool; `0`, unset,
/// or unparsable values keep rayon's default (one thread per core). Only
/// the first call in a process takes effect — rayon's global pool cannot
/// be resized — and later calls report the width chosen then. If another
/// component already built the pool, the request is silently ignored and
/// the existing width is reported.
pub fn configure_from_env() -> usize {
    *CONFIGURED.get_or_init(|| {
        if let Some(n) = requested_threads() {
            let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
        }
        rayon::current_num_threads()
    })
}

/// The thread count requested via `PDN_THREADS`, if any.
fn requested_threads() -> Option<usize> {
    let raw = std::env::var("PDN_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_a_positive_width_and_is_idempotent() {
        let first = configure_from_env();
        assert!(first >= 1);
        assert_eq!(configure_from_env(), first);
    }
}
