//! Process-wide thread-pool configuration.
//!
//! Every parallel region in the workspace runs on rayon's global pool, so
//! one override point suffices: [`configure_from_env`] reads `PDN_THREADS`
//! and sizes the pool before any parallel work executes. Binaries call it
//! first thing in `main`; the first call wins because rayon's global pool
//! is immutable once built.

use std::sync::OnceLock;

static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// Sizes the global rayon pool from the `PDN_THREADS` environment variable
/// and returns the effective worker count.
///
/// `PDN_THREADS=<n>` with `n ≥ 1` requests an `n`-thread pool; `0`, unset,
/// or unparsable values keep rayon's default (one thread per core). Only
/// the first call in a process takes effect — rayon's global pool cannot
/// be resized — and later calls report the width chosen then. If another
/// component already built the pool at a different width, the request
/// cannot take effect: the mismatch is reported on stderr and counted as
/// `core.threads.ignored_env` so a long-running daemon that was started
/// with a stale pool is visible in telemetry instead of silently
/// misconfigured forever.
pub fn configure_from_env() -> usize {
    *CONFIGURED.get_or_init(|| apply_request(std::env::var("PDN_THREADS").ok().as_deref()))
}

/// The body of [`configure_from_env`] without the once-per-process latch,
/// so tests can drive it directly against a pre-built pool.
fn apply_request(raw: Option<&str>) -> usize {
    if let Some(raw) = raw.filter(|r| !r.trim().is_empty()) {
        match parse_thread_request(raw) {
            Ok(n) => {
                if rayon::ThreadPoolBuilder::new().num_threads(n).build_global().is_err() {
                    // The global pool was already built by an earlier caller
                    // and cannot be resized. Dropping the error here (the
                    // old behaviour) left a daemon misconfigured forever
                    // with no trace; report the mismatch instead.
                    let effective = rayon::current_num_threads();
                    if effective != n {
                        eprintln!(
                            "pdn-core: PDN_THREADS={n} ignored: the global thread pool was \
                             already built with {effective} threads and cannot be resized; \
                             restart the process to apply the new width"
                        );
                        crate::telemetry::counter_add("core.threads.ignored_env", 1);
                    }
                }
            }
            Err(why) => {
                // The old behaviour was to silently fall back to the
                // default width, which made typos like PDN_THREADS=O4
                // indistinguishable from a deliberate full-width run.
                eprintln!(
                    "pdn-core: ignoring PDN_THREADS={raw:?} ({why}); \
                     using rayon's default width"
                );
                crate::telemetry::counter_add("core.threads.invalid_env", 1);
            }
        }
    }
    rayon::current_num_threads()
}

/// Parses a `PDN_THREADS` value into a pool width.
///
/// Accepts positive integers; rejects zero (rayon would interpret it as
/// "default width", which is better requested by unsetting the variable)
/// and anything unparsable.
fn parse_thread_request(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("thread count must be >= 1".to_string()),
        Ok(n) => Ok(n),
        Err(e) => Err(format!("not a valid thread count: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_a_positive_width_and_is_idempotent() {
        let first = configure_from_env();
        assert!(first >= 1);
        assert_eq!(configure_from_env(), first);
    }

    #[test]
    fn parse_accepts_positive_counts() {
        assert_eq!(parse_thread_request("1"), Ok(1));
        assert_eq!(parse_thread_request(" 8 "), Ok(8));
        assert_eq!(parse_thread_request("64"), Ok(64));
    }

    #[test]
    fn parse_rejects_zero_and_garbage() {
        assert!(parse_thread_request("0").is_err());
        assert!(parse_thread_request("-2").is_err());
        assert!(parse_thread_request("O4").is_err());
        assert!(parse_thread_request("4.0").is_err());
        assert!(parse_thread_request("").is_err());
    }
}
