//! Process-wide telemetry: counters, gauges, histograms, scoped timers,
//! hierarchical spans and a JSON-lines event sink.
//!
//! The paper's headline claim is a speedup table; reproducing it honestly
//! requires knowing where wall clock and solver iterations actually go.
//! This module is the one place every hot path reports to:
//!
//! * [`counter_add`] — monotonic `u64` counters (CG iterations, solver
//!   fallbacks, dropped NaN samples);
//! * [`gauge_set`] — last-value `f64` gauges (current learning rate);
//! * [`observe`] / [`observe_duration`] / [`timed`] — log-bucketed
//!   histograms with count/sum/min/max and approximate percentiles
//!   (per-step solve times, per-batch losses, batch occupancy);
//! * [`event`] — structured records appended immediately to the JSON-lines
//!   sink (per-epoch training stats, per-design runtime splits);
//! * [`span`] / [`span!`](crate::span) — hierarchical scoped wall-clock
//!   spans with parent/child links (per-thread span stack) and thread
//!   tagging, written to the sink on drop. Spans are the input to the
//!   Chrome-trace/Perfetto exporter and `pdn report` (see
//!   `pdn-eval::tracereport`).
//!
//! # Overhead contract
//!
//! Telemetry is **disabled by default**. Every recording entry point begins
//! with a single `Relaxed` atomic load ([`enabled`]) and returns before
//! touching any lock, allocating, or reading the clock, so instrumented hot
//! loops cost one predictable branch when telemetry is off. When enabled,
//! recording takes a short mutex-protected critical section; hot paths are
//! instrumented at solve/step granularity (not per CG iteration) to keep
//! the enabled-mode cost in the noise as well.
//!
//! # Enabling
//!
//! * Binaries: `pdn --telemetry out.jsonl ...` (flag wins over the
//!   environment);
//! * Environment: `PDN_TELEMETRY=<path>` writes JSON-lines to `<path>`;
//!   `PDN_TELEMETRY=1` enables in-memory aggregation only (summary table,
//!   no sink). `0`, empty, or unset keep telemetry off. Call
//!   [`init_from_env`] first thing in `main`.
//!
//! # JSON-lines schema
//!
//! Every line is one JSON object with at least:
//!
//! ```json
//! {"ts_us": 1234, "kind": "event", "name": "train.epoch", ...}
//! ```
//!
//! * `ts_us` — microseconds since telemetry was enabled (monotonic clock);
//! * `kind` — `event` or `span` (live records), or `counter` / `gauge` /
//!   `histogram` (aggregate dumps from [`write_summary_records`]);
//! * `name` — dotted metric path, e.g. `sparse.cg.iterations`;
//! * further keys are event-specific; span records carry
//!   `span`/`parent`/`thread`/`start_us`/`dur_us`/`ok` plus any attached
//!   fields; aggregate records carry `value` (counters, gauges) or
//!   `count`/`sum`/`min`/`max`/`p50`/`p95`/`p99` (histograms). Non-finite
//!   floats serialize as `null`.
//!
//! # Example
//!
//! ```
//! use pdn_core::telemetry;
//!
//! // Disabled by default: recording is a no-op.
//! telemetry::counter_add("demo.widgets", 3);
//! assert_eq!(telemetry::counter_value("demo.widgets"), 0);
//!
//! telemetry::enable();
//! telemetry::counter_add("demo.widgets", 3);
//! {
//!     let _t = telemetry::timed("demo.scope_seconds");
//! }
//! assert_eq!(telemetry::counter_value("demo.widgets"), 3);
//! assert!(telemetry::summary().contains("demo.widgets"));
//! telemetry::reset(); // back to disabled, metrics cleared
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of logarithmic histogram buckets. Bucket `i` covers values in
/// `[2^(i-40), 2^(i-39))`, spanning ~1e-12 .. ~1.7e7 — comfortably covering
/// nanosecond-scale timers through hour-scale stage totals.
const BUCKETS: usize = 64;
const BUCKET_BIAS: i32 = 40;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when telemetry is collecting. A single `Relaxed` atomic load — this
/// is the entire disabled-mode cost of every recording call.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One field value of a telemetry [`event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field (non-finite values serialize as `null`).
    F64(f64),
    /// Boolean field.
    Bool(bool),
    /// String field (JSON-escaped on write).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(f64::from(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Streaming histogram: count/sum/min/max plus log₂ buckets for
/// approximate percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Approximate median (geometric interpolation within the log bucket).
    pub p50: f64,
    /// Approximate 95th percentile (geometric interpolation).
    pub p95: f64,
    /// Approximate 99th percentile (geometric interpolation).
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean observation (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, buckets: [0; BUCKETS] }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Approximate quantile from the log buckets: locate the bucket holding
    /// the q-th observation, then interpolate geometrically within its
    /// `[2^k, 2^(k+1))` range by the observation's rank inside the bucket
    /// (log-uniform assumption), clamped to observed bounds. For a
    /// single-observation bucket this degenerates to the geometric midpoint.
    fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = 2f64.powi(i as i32 - BUCKET_BIAS);
                // Rank of the target observation inside this bucket, mapped
                // to (0, 1) with a half-sample midpoint correction.
                let frac = ((target - seen) as f64 - 0.5) / c as f64;
                let est = lo * 2f64.powf(frac);
                return est.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    (v.log2().floor() as i32 + BUCKET_BIAS).clamp(0, BUCKETS as i32 - 1) as usize
}

struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    sink: Option<BufWriter<File>>,
    sink_lines: u64,
    epoch: Instant,
    summary_written: bool,
}

impl State {
    fn new() -> State {
        State {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            sink: None,
            sink_lines: 0,
            epoch: Instant::now(),
            summary_written: false,
        }
    }

    fn ts_us(&self) -> u128 {
        self.epoch.elapsed().as_micros()
    }

    fn write_line(&mut self, line: &str) {
        if let Some(sink) = &mut self.sink {
            if writeln!(sink, "{line}").is_ok() {
                self.sink_lines += 1;
            }
        }
    }
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::new()))
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    // A panic while holding the telemetry lock must not poison observability
    // for the rest of the process.
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Enables in-memory aggregation (counters/gauges/histograms + summary)
/// without a JSON-lines sink. Events are dropped unless a sink is attached.
pub fn enable() {
    let mut s = lock();
    s.epoch = Instant::now();
    s.summary_written = false;
    drop(s);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enables telemetry with a JSON-lines sink at `path` (truncating any
/// existing file).
///
/// # Errors
///
/// Propagates file-creation errors; telemetry is left disabled on failure.
pub fn enable_with_sink(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut s = lock();
    s.sink = Some(BufWriter::new(file));
    s.sink_lines = 0;
    s.epoch = Instant::now();
    s.summary_written = false;
    drop(s);
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Configures telemetry from the `PDN_TELEMETRY` environment variable and
/// returns whether it ended up enabled. `0`, empty, or unset leave it off;
/// `1` enables aggregation without a sink; anything else is treated as a
/// sink path (a warning is printed and telemetry stays off if the file
/// cannot be created).
pub fn init_from_env() -> bool {
    match std::env::var("PDN_TELEMETRY") {
        Err(_) => false,
        Ok(raw) => {
            let raw = raw.trim();
            match raw {
                "" | "0" => false,
                "1" => {
                    enable();
                    true
                }
                path => match enable_with_sink(Path::new(path)) {
                    Ok(()) => true,
                    Err(e) => {
                        eprintln!("warning: PDN_TELEMETRY={path}: cannot open sink: {e}; telemetry disabled");
                        false
                    }
                },
            }
        }
    }
}

/// Stops collection. Aggregated metrics and the sink are retained (call
/// [`reset`] to drop them).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Disables telemetry and clears all metrics and the sink. Primarily for
/// tests and long-lived hosts that recycle the process between runs.
pub fn reset() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut s = lock();
    *s = State::new();
}

/// Clears aggregated metrics (counters, gauges, histograms) without
/// touching the enabled flag or the sink.
pub fn reset_metrics() {
    let mut s = lock();
    s.counters.clear();
    s.gauges.clear();
    s.histograms.clear();
}

/// Adds `delta` to the named monotonic counter. No-op when disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    match s.counters.get_mut(name) {
        Some(c) => *c += delta,
        None => {
            s.counters.insert(name.to_string(), delta);
        }
    }
}

/// Current value of a counter (0 if never written or telemetry disabled
/// since the last reset).
pub fn counter_value(name: &str) -> u64 {
    lock().counters.get(name).copied().unwrap_or(0)
}

/// Sets the named gauge to `value`. No-op when disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    match s.gauges.get_mut(name) {
        Some(g) => *g = value,
        None => {
            s.gauges.insert(name.to_string(), value);
        }
    }
}

/// Current value of a gauge, if set.
pub fn gauge_value(name: &str) -> Option<f64> {
    lock().gauges.get(name).copied()
}

/// Records one observation into the named histogram. No-op when disabled.
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    match s.histograms.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histogram::new();
            h.record(value);
            s.histograms.insert(name.to_string(), h);
        }
    }
}

/// Records a duration (seconds) into the named histogram. No-op when
/// disabled.
pub fn observe_duration(name: &str, d: Duration) {
    if !enabled() {
        return;
    }
    observe(name, d.as_secs_f64());
}

/// Summary of the named histogram, if any observations were recorded.
pub fn histogram_summary(name: &str) -> Option<HistogramSummary> {
    lock().histograms.get(name).map(Histogram::summarize)
}

/// A scoped wall-clock timer: records the elapsed time into the named
/// histogram (seconds) when dropped. When telemetry is disabled at
/// construction, the guard holds no clock reading and drop is free.
#[derive(Debug)]
#[must_use = "the timer records on drop; binding to `_` drops it immediately"]
pub struct ScopedTimer {
    name: &'static str,
    start: Option<Instant>,
}

impl ScopedTimer {
    /// Elapsed time so far, if the timer is live.
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|s| s.elapsed())
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe_duration(self.name, start.elapsed());
        }
    }
}

/// Starts a scoped timer feeding the named histogram.
pub fn timed(name: &'static str) -> ScopedTimer {
    ScopedTimer { name, start: enabled().then(Instant::now) }
}

// ---------------------------------------------------------------------------
// Hierarchical spans
// ---------------------------------------------------------------------------

/// Process-wide span-id allocator. Ids are never reused within a process,
/// so parent links stay unambiguous even across telemetry resets.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Small, stable per-thread tags (1, 2, 3, … in first-touch order) —
/// `std::thread::ThreadId` has no stable integer form.
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
    /// Stack of open span ids on this thread; the top is the parent of the
    /// next span opened here.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The stable integer tag of the calling thread (assigned on first use).
pub fn current_thread_tag() -> u64 {
    THREAD_TAG.with(|t| *t)
}

/// Id of the innermost open span on this thread, if any.
pub fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

struct SpanLive {
    name: String,
    id: u64,
    parent: Option<u64>,
    thread: u64,
    start: Instant,
    ok: bool,
    fields: Vec<(String, Value)>,
}

/// A hierarchical scoped span.
///
/// Opening a span (when telemetry is enabled) pushes its id onto a
/// thread-local stack, making it the parent of any span opened on the same
/// thread before it closes. Dropping the guard pops the stack and appends
/// one `kind:"span"` record to the JSON-lines sink carrying
/// `span`/`parent`/`thread`/`start_us`/`dur_us`/`ok` plus any attached
/// fields. A span dropped during a panic unwind records `ok:false`, so the
/// sink still explains *where* a run died.
///
/// When telemetry is disabled at construction the guard is inert: no
/// allocation, no clock read, no thread-local touch — the entire cost is
/// the one relaxed atomic load of [`enabled`].
#[must_use = "a span records on drop; binding to `_` closes it immediately"]
#[derive(Debug)]
pub struct Span {
    live: Option<Box<SpanLive>>,
}

impl std::fmt::Debug for SpanLive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLive")
            .field("name", &self.name)
            .field("id", &self.id)
            .field("parent", &self.parent)
            .field("thread", &self.thread)
            .finish_non_exhaustive()
    }
}

impl Span {
    /// The span's id, if it is live (telemetry was enabled when it opened).
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }

    /// Elapsed time since the span opened, if live.
    pub fn elapsed(&self) -> Option<Duration> {
        self.live.as_ref().map(|l| l.start.elapsed())
    }

    /// Overrides the span's `ok` flag (defaults to `true`; a panic unwind
    /// forces `false` regardless).
    pub fn set_ok(&mut self, ok: bool) {
        if let Some(l) = &mut self.live {
            l.ok = ok;
        }
    }

    /// Attaches a field to be written with the span record. No-op on an
    /// inert span; reserved keys (`ts_us`, `kind`, `name`, `span`,
    /// `parent`, `thread`, `start_us`, `dur_us`, `ok`) are skipped at
    /// write time.
    pub fn field(&mut self, key: &str, value: impl Into<Value>) {
        if let Some(l) = &mut self.live {
            l.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur = live.start.elapsed();
        // Pop this span from the thread's stack. RAII scoping makes the top
        // of the stack ours; remove by id anyway so a leaked/reordered guard
        // cannot corrupt ancestry for unrelated spans.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == live.id) {
                stack.remove(pos);
            }
        });
        if !enabled() {
            return;
        }
        let ok = live.ok && !std::thread::panicking();
        let mut s = lock();
        if s.sink.is_none() {
            return;
        }
        let end_us = s.ts_us();
        let dur_us = dur.as_micros();
        let start_us = end_us.saturating_sub(dur_us);
        let mut line = String::with_capacity(160);
        let _ = write!(line, "{{\"ts_us\":{end_us},\"kind\":\"span\",\"name\":");
        push_json_str(&mut line, &live.name);
        let _ = write!(line, ",\"span\":{}", live.id);
        match live.parent {
            Some(p) => {
                let _ = write!(line, ",\"parent\":{p}");
            }
            None => line.push_str(",\"parent\":null"),
        }
        let _ = write!(
            line,
            ",\"thread\":{},\"start_us\":{start_us},\"dur_us\":{dur_us},\"ok\":{ok}",
            live.thread
        );
        for (key, value) in &live.fields {
            if matches!(
                key.as_str(),
                "ts_us" | "kind" | "name" | "span" | "parent" | "thread" | "start_us"
                    | "dur_us" | "ok"
            ) {
                continue;
            }
            line.push(',');
            push_json_str(&mut line, key);
            line.push(':');
            push_json_value(&mut line, value);
        }
        line.push('}');
        s.write_line(&line);
    }
}

/// Opens a hierarchical span named `name`. See [`Span`] for semantics; the
/// [`span!`](crate::span) macro adds field-attaching sugar.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span_id();
    let thread = current_thread_tag();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span {
        live: Some(Box::new(SpanLive {
            name: name.to_string(),
            id,
            parent,
            thread,
            start: Instant::now(),
            ok: true,
            fields: Vec::new(),
        })),
    }
}

/// A guard that finalizes the JSON-lines sink when dropped: dumps the
/// aggregate summary records (once) and flushes. Install one at the top of
/// `main` so the sink survives error returns and panics — without it, a
/// command that dies before its success path leaves the `BufWriter`'s tail
/// unflushed and the file truncated mid-record.
#[must_use = "the guard flushes on drop; binding to `_` drops it immediately"]
#[derive(Debug, Default)]
pub struct FlushGuard {
    _priv: (),
}

impl FlushGuard {
    /// Creates the guard. Cheap and safe to construct before telemetry is
    /// enabled; finalization is a no-op when nothing was recorded.
    pub fn new() -> FlushGuard {
        FlushGuard { _priv: () }
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        write_summary_records();
        flush();
    }
}

/// Appends one structured record to the JSON-lines sink (no-op when
/// disabled or when no sink is attached). `fields` are rendered after the
/// standard `ts_us`/`kind`/`name` keys; a field named like a standard key
/// is skipped rather than duplicated.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    if s.sink.is_none() {
        return;
    }
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"ts_us\":{},\"kind\":\"event\",\"name\":", s.ts_us());
    push_json_str(&mut line, name);
    for (key, value) in fields {
        if matches!(*key, "ts_us" | "kind" | "name") {
            continue;
        }
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        push_json_value(&mut line, value);
    }
    line.push('}');
    s.write_line(&line);
}

/// Dumps every counter, gauge and histogram as one JSON-lines record each
/// (kind `counter` / `gauge` / `histogram`) and flushes the sink. Call once
/// at the end of a run so the sink is a self-contained artifact; repeated
/// calls between enables are no-ops, so an exit-path [`FlushGuard`] and an
/// explicit success-path call cannot duplicate the records.
pub fn write_summary_records() {
    if !enabled() {
        return;
    }
    let mut s = lock();
    if s.sink.is_none() || s.summary_written {
        return;
    }
    s.summary_written = true;
    let lines = aggregate_records(&s);
    for line in &lines {
        s.write_line(line);
    }
    if let Some(sink) = &mut s.sink {
        let _ = sink.flush();
    }
}

/// Renders every counter, gauge and histogram as one JSON-lines record each
/// (the same `kind:counter/gauge/histogram` schema the summary dump uses).
fn aggregate_records(s: &State) -> Vec<String> {
    let ts = s.ts_us();
    let mut lines: Vec<String> = Vec::new();
    for (name, value) in &s.counters {
        let mut line = String::with_capacity(64);
        let _ = write!(line, "{{\"ts_us\":{ts},\"kind\":\"counter\",\"name\":");
        push_json_str(&mut line, name);
        let _ = write!(line, ",\"value\":{value}}}");
        lines.push(line);
    }
    for (name, value) in &s.gauges {
        let mut line = String::with_capacity(64);
        let _ = write!(line, "{{\"ts_us\":{ts},\"kind\":\"gauge\",\"name\":");
        push_json_str(&mut line, name);
        line.push_str(",\"value\":");
        push_json_value(&mut line, &Value::F64(*value));
        line.push('}');
        lines.push(line);
    }
    for (name, hist) in &s.histograms {
        let h = hist.summarize();
        let mut line = String::with_capacity(128);
        let _ = write!(line, "{{\"ts_us\":{ts},\"kind\":\"histogram\",\"name\":");
        push_json_str(&mut line, name);
        let _ = write!(line, ",\"count\":{}", h.count);
        for (key, v) in [
            ("sum", h.sum),
            ("min", h.min),
            ("max", h.max),
            ("p50", h.p50),
            ("p95", h.p95),
            ("p99", h.p99),
        ] {
            let _ = write!(line, ",\"{key}\":");
            push_json_value(&mut line, &Value::F64(v));
        }
        line.push('}');
        lines.push(line);
    }
    lines
}

/// Snapshot of every aggregated metric as newline-terminated JSON-lines
/// records, without touching the sink or the once-per-run summary latch.
/// This is the payload a live endpoint (`pdn serve`'s `GET /metrics`) can
/// return repeatedly while the process keeps recording; the schema matches
/// the sink's `kind:counter/gauge/histogram` records, so the same tooling
/// parses both. Returns an empty string when telemetry is disabled or
/// nothing has been recorded.
pub fn snapshot_records() -> String {
    if !enabled() {
        return String::new();
    }
    let s = lock();
    let lines = aggregate_records(&s);
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Maps a dotted metric path to a legal Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit gets a `_` prefix. `serve.predict.batch_width` →
/// `serve_predict_batch_width`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Upper bound (`le` label value) of internal log₂ bucket `i`: the bucket
/// covers `[2^(i-40), 2^(i-39))`, so observations in it are `< 2^(i-39)`
/// and the exported cumulative bucket uses that exclusive-upper bound.
/// Bucket 0 additionally absorbs zero, negative and non-finite
/// observations, so its bound is the smallest exported `le`.
fn bucket_upper_bound(i: usize) -> f64 {
    2f64.powi(i as i32 + 1 - BUCKET_BIAS)
}

/// Renders a float for Prometheus sample values and `le` labels. The text
/// format accepts Go-style scientific notation; Rust's shortest
/// round-trip `{e}` formatting is compatible and lossless.
fn prometheus_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:e}")
    }
}

/// Snapshot of every aggregated metric in the Prometheus text exposition
/// format (version 0.0.4): one `# TYPE` line per family, counters suffixed
/// `_total` (added unless already present), gauges as-is, and log₂
/// histograms expanded into cumulative `_bucket{le="..."}` samples plus
/// `_sum`/`_count` — the `+Inf` bucket always equals `_count`, and bucket
/// counts are monotone non-decreasing in `le`. Empty buckets outside the
/// observed range are elided (the cumulative encoding keeps the family
/// valid). Returns an empty string when telemetry is disabled; the
/// disabled cost is the usual one relaxed atomic load.
pub fn prometheus_text() -> String {
    if !enabled() {
        return String::new();
    }
    let s = lock();
    let mut out = String::with_capacity(
        64 * (s.counters.len() + s.gauges.len()) + 512 * s.histograms.len(),
    );
    for (name, value) in &s.counters {
        let mut pname = prometheus_name(name);
        if !pname.ends_with("_total") {
            pname.push_str("_total");
        }
        let _ = writeln!(out, "# TYPE {pname} counter");
        let _ = writeln!(out, "{pname} {value}");
    }
    for (name, value) in &s.gauges {
        let pname = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname} {}", prometheus_f64(*value));
    }
    for (name, hist) in &s.histograms {
        let pname = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {pname} histogram");
        // Emit the cumulative buckets covering the observed range: from
        // the first to the last non-empty internal bucket. Everything
        // below the range has cumulative count 0 anyway, everything above
        // is carried by +Inf.
        let first = hist.buckets.iter().position(|&c| c > 0);
        let last = hist.buckets.iter().rposition(|&c| c > 0);
        let mut cumulative = 0u64;
        if let (Some(first), Some(last)) = (first, last) {
            for i in first..=last {
                cumulative += hist.buckets[i];
                let _ = writeln!(
                    out,
                    "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                    prometheus_f64(bucket_upper_bound(i))
                );
            }
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{pname}_sum {}", prometheus_f64(hist.sum));
        let _ = writeln!(out, "{pname}_count {}", hist.count);
    }
    out
}

/// Flushes the JSON-lines sink, if any.
pub fn flush() {
    let mut s = lock();
    if let Some(sink) = &mut s.sink {
        let _ = sink.flush();
    }
}

/// Number of lines written to the sink so far (tests and sanity checks).
pub fn sink_line_count() -> u64 {
    lock().sink_lines
}

/// Human-readable summary table of every aggregated metric.
pub fn summary() -> String {
    let s = lock();
    let mut out = String::new();
    let _ = writeln!(out, "telemetry summary ({:.3}s since enable)", s.epoch.elapsed().as_secs_f64());
    if s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty() {
        let _ = writeln!(out, "  (no metrics recorded)");
        return out;
    }
    if !s.counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for (name, value) in &s.counters {
            let _ = writeln!(out, "    {name:<44} {value}");
        }
    }
    if !s.gauges.is_empty() {
        let _ = writeln!(out, "  gauges:");
        for (name, value) in &s.gauges {
            let _ = writeln!(out, "    {name:<44} {value:.6}");
        }
    }
    if !s.histograms.is_empty() {
        let _ = writeln!(
            out,
            "  histograms: {:<32} {:>8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "", "count", "mean", "min", "p50", "p95", "p99", "total"
        );
        for (name, hist) in &s.histograms {
            let h = hist.summarize();
            let _ = writeln!(
                out,
                "    {name:<42} {:>8} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e}",
                h.count,
                h.mean(),
                h.min,
                h.p50,
                h.p95,
                h.p99,
                h.sum
            );
        }
    }
    out
}

/// Opens a hierarchical telemetry span with optional fields, returning the
/// guard. Exported at the crate root (`pdn_core::span!`).
///
/// ```
/// use pdn_core::telemetry;
/// telemetry::enable();
/// {
///     let _outer = pdn_core::span!("train.epoch", "epoch" => 3u64);
///     let _inner = pdn_core::span!("train.batch");
/// } // records close in reverse order, linked parent → child
/// telemetry::reset();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::telemetry::span($name)
    };
    ($name:expr, $($key:literal => $value:expr),+ $(,)?) => {{
        let mut __span = $crate::telemetry::span($name);
        $( __span.field($key, $value); )+
        __span
    }};
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(x) => push_json_str(out, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; unit tests serialize on this lock so
    /// enable/reset cycles cannot interleave.
    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_mode_is_a_no_op() {
        let _g = test_guard();
        reset();
        assert!(!enabled());
        counter_add("t.counter", 5);
        gauge_set("t.gauge", 1.5);
        observe("t.histo", 2.0);
        let timer = timed("t.timer");
        assert!(timer.elapsed().is_none(), "disabled timer must not read the clock");
        drop(timer);
        event("t.event", &[("k", 1u64.into())]);
        assert_eq!(counter_value("t.counter"), 0);
        assert_eq!(gauge_value("t.gauge"), None);
        assert!(histogram_summary("t.histo").is_none());
        assert!(histogram_summary("t.timer").is_none());
    }

    #[test]
    fn snapshot_records_is_live_and_repeatable() {
        let _g = test_guard();
        reset();
        enable();
        counter_add("t.snap.counter", 7);
        gauge_set("t.snap.gauge", 2.5);
        observe("t.snap.histo", 1.0);
        let snap = snapshot_records();
        assert!(snap.contains("\"kind\":\"counter\",\"name\":\"t.snap.counter\",\"value\":7"), "{snap}");
        assert!(snap.contains("\"kind\":\"gauge\",\"name\":\"t.snap.gauge\""), "{snap}");
        assert!(snap.contains("\"kind\":\"histogram\",\"name\":\"t.snap.histo\""), "{snap}");
        assert!(snap.ends_with('\n'));
        // Unlike the sink summary there is no once-per-run latch: repeated
        // snapshots keep reflecting live state.
        counter_add("t.snap.counter", 1);
        assert!(snapshot_records().contains("\"value\":8"));
        reset();
        assert!(snapshot_records().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let _g = test_guard();
        reset();
        enable();
        counter_add("t.counter", 2);
        counter_add("t.counter", 3);
        gauge_set("t.gauge", 1.0);
        gauge_set("t.gauge", -2.5);
        for v in [1.0, 2.0, 4.0, 8.0] {
            observe("t.histo", v);
        }
        assert_eq!(counter_value("t.counter"), 5);
        assert_eq!(gauge_value("t.gauge"), Some(-2.5));
        let h = histogram_summary("t.histo").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 15.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 8.0);
        assert!(h.p50 >= 1.0 && h.p50 <= 8.0, "p50 {}", h.p50);
        assert!(h.p99 >= h.p50 && h.p99 <= 8.0, "p99 {}", h.p99);
        let text = summary();
        assert!(text.contains("t.counter"));
        assert!(text.contains("t.gauge"));
        assert!(text.contains("t.histo"));
        reset();
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let _g = test_guard();
        reset();
        enable();
        {
            let _t = timed("t.scope_seconds");
            std::thread::sleep(Duration::from_millis(2));
        }
        let h = histogram_summary("t.scope_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.001, "timer recorded {}", h.sum);
        reset();
    }

    #[test]
    fn json_escaping_is_sound() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        let mut v = String::new();
        push_json_value(&mut v, &Value::F64(f64::NAN));
        assert_eq!(v, "null");
        v.clear();
        push_json_value(&mut v, &Value::F64(0.25));
        assert_eq!(v, "0.25");
    }

    #[test]
    fn buckets_cover_extremes() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), 0);
        assert!(bucket_of(1e-300) < BUCKETS);
        assert_eq!(bucket_of(1e300), BUCKETS - 1);
        // Monotone over the covered range.
        assert!(bucket_of(1e-9) < bucket_of(1e-3));
        assert!(bucket_of(1e-3) < bucket_of(1.0));
        assert!(bucket_of(1.0) < bucket_of(1e3));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 1..=100: every percentile is known exactly; the log₂-bucket
        // estimate must land within the bucket-resolution error band.
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        let s = h.summarize();
        assert!((s.p50 - 50.5).abs() / 50.5 < 0.25, "p50 {}", s.p50);
        assert!((s.p95 - 95.0).abs() / 95.0 < 0.25, "p95 {}", s.p95);
        assert!((s.p99 - 99.0).abs() / 99.0 < 0.25, "p99 {}", s.p99);
        // Percentiles are ordered and inside the observed range.
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn quantiles_of_constant_distribution_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(7.0);
        }
        let s = h.summarize();
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn quantiles_of_geometric_distribution_track_true_values() {
        // One observation per power of two: the true q-quantile is itself a
        // power of two; the estimate must stay within one bucket (×2).
        let mut h = Histogram::new();
        for k in 0..10 {
            h.record(2f64.powi(k));
        }
        let s = h.summarize();
        let true_p50 = 2f64.powi(4); // 5th of 10 observations
        assert!(s.p50 / true_p50 < 2.0 && true_p50 / s.p50 < 2.0, "p50 {}", s.p50);
        assert!(s.p99 <= s.max && s.p99 >= 2f64.powi(8), "p99 {}", s.p99);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let h = Histogram::new();
        let s = h.summarize();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert_eq!((s.min, s.max), (0.0, 0.0), "empty histogram reports 0 bounds");
        assert_eq!((s.p50, s.p95, s.p99), (0.0, 0.0, 0.0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_of_single_sample_are_that_sample() {
        // One observation: every percentile must clamp to the observed
        // value exactly, not to a bucket boundary.
        for v in [1e-9, 0.37, 1.0, 700.0] {
            let mut h = Histogram::new();
            h.record(v);
            let s = h.summarize();
            assert_eq!(s.count, 1);
            assert_eq!((s.p50, s.p95, s.p99), (v, v, v), "single sample {v}");
        }
    }

    #[test]
    fn quantiles_all_in_one_bucket_stay_within_observed_bounds() {
        // 0.30, 0.31, ..., 0.49 all land in the [0.25, 0.5) bucket; the
        // interpolated estimates must stay inside the *observed* min/max,
        // not just the bucket, and stay ordered.
        let mut h = Histogram::new();
        for i in 0..20 {
            h.record(0.30 + i as f64 * 0.01);
        }
        let s = h.summarize();
        assert_eq!(bucket_of(s.min), bucket_of(s.max), "test premise: one bucket");
        assert!(s.min == 0.30 && (s.max - 0.49).abs() < 1e-12);
        assert!(s.p50 >= s.min && s.p50 <= s.max, "p50 {}", s.p50);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn quantiles_saturate_cleanly_in_the_max_bucket() {
        // Values beyond the top bucket's range all clamp into bucket 63;
        // percentile interpolation there must not produce infinities or
        // escape the observed range.
        let mut h = Histogram::new();
        for v in [1e280, 1e290, 1e300] {
            h.record(v);
        }
        assert_eq!(bucket_of(1e280), BUCKETS - 1);
        let s = h.summarize();
        assert!(s.p50.is_finite() && s.p99.is_finite());
        assert!(s.p50 >= 1e280 && s.p99 <= 1e300);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        // A mixed histogram whose tail saturates: p99 must land in the
        // saturated bucket's observed range, p50 far below it.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1.0);
        }
        h.record(1e300);
        let s = h.summarize();
        assert!(s.p50 < 2.0, "p50 {} must stay in the [1,2) bucket", s.p50);
        assert!(s.p99 <= 1e300 && s.p99 >= 1.0);
    }

    #[test]
    fn prometheus_name_sanitizes() {
        assert_eq!(prometheus_name("serve.predict.batch_width"), "serve_predict_batch_width");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn prometheus_text_families_are_typed_and_histograms_cumulative() {
        let _g = test_guard();
        reset();
        assert!(prometheus_text().is_empty(), "disabled exporter must emit nothing");
        enable();
        counter_add("t.prom.requests", 5);
        counter_add("t.prom.rejected_total", 2);
        gauge_set("t.prom.depth", 3.5);
        gauge_set("t.prom.bad", f64::NAN);
        for v in [0.5, 1.0, 2.0, 2.5, 1e300] {
            observe("t.prom.latency_seconds", v);
        }
        let text = prometheus_text();
        reset();

        // Counters get the _total suffix exactly once.
        assert!(text.contains("# TYPE t_prom_requests_total counter\nt_prom_requests_total 5\n"), "{text}");
        assert!(text.contains("# TYPE t_prom_rejected_total counter\nt_prom_rejected_total 2\n"), "{text}");
        assert!(!text.contains("rejected_total_total"), "{text}");
        assert!(text.contains("# TYPE t_prom_depth gauge\nt_prom_depth 3.5e0\n"), "{text}");
        assert!(text.contains("t_prom_bad NaN"), "{text}");

        // Histogram: every family typed, buckets cumulative and monotone,
        // +Inf bucket == _count, _count matches observations.
        assert!(text.contains("# TYPE t_prom_latency_seconds histogram"), "{text}");
        let buckets: Vec<(f64, u64)> = text
            .lines()
            .filter_map(|l| l.strip_prefix("t_prom_latency_seconds_bucket{le=\""))
            .map(|rest| {
                let (le, count) = rest.split_once("\"} ").unwrap();
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
                (le, count.parse().unwrap())
            })
            .collect();
        assert!(buckets.len() >= 3, "{text}");
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "le not increasing: {buckets:?}");
            assert!(pair[0].1 <= pair[1].1, "cumulative counts not monotone: {buckets:?}");
        }
        let last = buckets.last().unwrap();
        assert_eq!(last.0, f64::INFINITY);
        assert_eq!(last.1, 5, "+Inf bucket must count everything");
        assert!(text.contains("t_prom_latency_seconds_count 5"), "{text}");
        // 0.5 sits in the [0.5, 1) bucket, whose exclusive upper bound is
        // 1: the first cumulative bucket is le="1e0" with count 1.
        assert_eq!(buckets.first(), Some(&(1.0, 1)), "{text}");
        // The saturated observation is only in +Inf-adjacent top bucket.
        let sum_line = text.lines().find(|l| l.starts_with("t_prom_latency_seconds_sum")).unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - (0.5 + 1.0 + 2.0 + 2.5 + 1e300)).abs() < 1e285, "{sum_line}");
    }

    #[test]
    fn prometheus_bucket_bounds_match_internal_buckets() {
        // The le of bucket i is exactly the lower bound of bucket i+1, so
        // the cumulative mapping is exact, not approximate.
        for i in 0..BUCKETS - 1 {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_of(hi * 0.999), i, "value below le lands in bucket {i}");
            assert_eq!(bucket_of(hi), i + 1, "value at le spills into the next bucket");
        }
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = test_guard();
        reset();
        let mut sp = span("t.disabled");
        assert!(sp.id().is_none());
        assert!(sp.elapsed().is_none());
        sp.field("k", 1u64);
        sp.set_ok(false);
        drop(sp);
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn spans_nest_and_link_parents_in_the_sink() {
        let _g = test_guard();
        reset();
        let path =
            std::env::temp_dir().join(format!("pdn_span_unit_{}.jsonl", std::process::id()));
        enable_with_sink(&path).unwrap();
        let outer_id;
        let inner_id;
        {
            let outer = span("t.outer");
            outer_id = outer.id().unwrap();
            assert_eq!(current_span_id(), Some(outer_id));
            {
                let mut inner = crate::span!("t.inner", "step" => 3u64);
                inner_id = inner.id().unwrap();
                assert_eq!(current_span_id(), Some(inner_id));
                inner.set_ok(false);
            }
            assert_eq!(current_span_id(), Some(outer_id));
        }
        assert_eq!(current_span_id(), None);
        flush();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        reset();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "two span records in:\n{text}");
        // Records are written at close: inner first.
        let inner_line = lines[0];
        let outer_line = lines[1];
        assert!(inner_line.contains("\"kind\":\"span\"") && inner_line.contains("\"name\":\"t.inner\""));
        assert!(inner_line.contains(&format!("\"span\":{inner_id}")));
        assert!(inner_line.contains(&format!("\"parent\":{outer_id}")));
        assert!(inner_line.contains("\"ok\":false"));
        assert!(inner_line.contains("\"step\":3"));
        assert!(outer_line.contains("\"name\":\"t.outer\""));
        assert!(outer_line.contains("\"parent\":null"));
        assert!(outer_line.contains("\"ok\":true"));
        for line in lines {
            assert!(line.contains("\"thread\":"));
            assert!(line.contains("\"start_us\":"));
            assert!(line.contains("\"dur_us\":"));
        }
    }

    #[test]
    fn span_stack_survives_disable_mid_span() {
        let _g = test_guard();
        reset();
        enable();
        let sp = span("t.mid_disable");
        assert!(sp.id().is_some());
        disable();
        drop(sp); // must still pop the stack without writing
        assert_eq!(current_span_id(), None);
        reset();
    }

    #[test]
    fn threaded_counting_is_lossless() {
        let _g = test_guard();
        reset();
        enable();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        counter_add("t.mt", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter_value("t.mt"), 4000);
        reset();
    }

    #[test]
    fn jsonl_sink_round_trip() {
        let _g = test_guard();
        reset();
        let path = std::env::temp_dir()
            .join(format!("pdn_telemetry_unit_{}.jsonl", std::process::id()));
        enable_with_sink(&path).unwrap();
        event(
            "t.kinds",
            &[
                ("u", 7usize.into()),
                ("i", Value::I64(-3)),
                ("f", 0.5f64.into()),
                ("b", true.into()),
                ("s", "hello \"world\"".into()),
                ("nan", f64::NAN.into()),
                ("name", "shadowed".into()), // reserved key must be skipped
            ],
        );
        counter_add("t.rt.counter", 9);
        gauge_set("t.rt.gauge", 2.0);
        observe("t.rt.histo", 3.0);
        write_summary_records();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        reset();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "event + counter + gauge + histogram in:\n{text}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
            assert!(line.contains("\"ts_us\":"), "missing ts_us: {line}");
            assert!(line.contains("\"kind\":"), "missing kind: {line}");
            assert!(line.contains("\"name\":"), "missing name: {line}");
        }
        let ev = lines[0];
        assert!(ev.contains("\"kind\":\"event\""));
        assert!(ev.contains("\"u\":7"));
        assert!(ev.contains("\"i\":-3"));
        assert!(ev.contains("\"f\":0.5"));
        assert!(ev.contains("\"b\":true"));
        assert!(ev.contains("\"s\":\"hello \\\"world\\\"\""));
        assert!(ev.contains("\"nan\":null"));
        assert!(!ev.contains("shadowed"), "reserved key leaked: {ev}");
        assert!(text.contains("\"kind\":\"counter\",\"name\":\"t.rt.counter\",\"value\":9"));
        assert!(text.contains("\"kind\":\"gauge\",\"name\":\"t.rt.gauge\",\"value\":2"));
        assert!(text.contains("\"kind\":\"histogram\",\"name\":\"t.rt.histo\",\"count\":1"));
    }
}
