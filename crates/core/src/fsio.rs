//! Crash-safe filesystem primitives and content digests.
//!
//! Every artifact this workspace persists — predictor bundles, training
//! checkpoints, ground-truth cache entries, noise-map CSVs, SPICE decks,
//! reports — goes through [`atomic_write`]/[`atomic_write_with`]: the bytes
//! are written to a temporary file in the destination directory, flushed to
//! disk, and then renamed over the destination. A crash at any point leaves
//! either the previous file or the new one, never a truncated hybrid.
//!
//! [`Digest`] is the workspace's dependency-free content hash (FNV-1a,
//! 64-bit). It keys the ground-truth cache and seals checkpoint and cache
//! payloads against torn or bit-flipped reads. It is *not* cryptographic —
//! collisions are adversarially easy — but for cache addressing of our own
//! artifacts the 64-bit collision floor is far below the number of entries
//! any run produces.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic discriminator so concurrent writers (threads or processes
/// sharing a PID namespace) never collide on the same temporary name.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_path_for(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path.file_name().unwrap_or_default().to_string_lossy();
    path.with_file_name(format!(".{name}.tmp.{pid}.{n}"))
}

/// Atomically replaces `path` with `bytes`.
///
/// The bytes are staged in a hidden temporary file in the same directory
/// (so the final rename never crosses a filesystem), fsynced, and renamed
/// into place. On any error the temporary file is removed and `path` is
/// left untouched.
///
/// # Errors
///
/// Propagates I/O errors from creation, writing, syncing or renaming.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with(path, |w| w.write_all(bytes))
}

/// Streaming variant of [`atomic_write`]: `f` receives a buffered writer
/// for the staging file; the destination is only replaced after `f`
/// succeeds and the staged bytes are synced.
///
/// # Errors
///
/// Propagates errors from `f` and from the underlying filesystem
/// operations; the staging file is cleaned up on every error path.
pub fn atomic_write_with<F>(path: impl AsRef<Path>, f: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_path_for(path);
    let result = (|| {
        let file = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
        let mut writer = BufWriter::new(file);
        f(&mut writer)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the containing directory so the
        // new directory entry survives a crash (best-effort on filesystems
        // that reject directory fsync).
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Atomically publishes a whole directory of artifacts.
///
/// `build` receives a hidden staging directory (a sibling of `dest`, so the
/// final rename never crosses a filesystem) and populates it; only after it
/// succeeds is the staging directory renamed to `dest`. A previously
/// published `dest` is moved aside first and removed after the swap, so
/// readers observe either the complete old directory or the complete new
/// one — never a half-written mixture. On any error the staging directory
/// (and, if the swap itself failed, the displaced old directory is restored)
/// is cleaned up and `dest` is left as it was.
///
/// # Errors
///
/// Propagates errors from `build` and from the underlying filesystem
/// operations.
pub fn publish_dir<F>(dest: impl AsRef<Path>, build: F) -> io::Result<()>
where
    F: FnOnce(&Path) -> io::Result<()>,
{
    let dest = dest.as_ref();
    if let Some(parent) = dest.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let stage = tmp_path_for(dest);
    let result = (|| {
        fs::create_dir(&stage)?;
        build(&stage)?;
        // Move a previous publication aside rather than deleting it before
        // the swap: if the rename below fails we can put it back.
        let displaced = tmp_path_for(dest);
        let had_old = dest.exists();
        if had_old {
            fs::rename(dest, &displaced)?;
        }
        if let Err(e) = fs::rename(&stage, dest) {
            if had_old {
                let _ = fs::rename(&displaced, dest);
            }
            return Err(e);
        }
        if had_old {
            let _ = fs::remove_dir_all(&displaced);
        }
        // Persist the swap: fsync the parent directory (best-effort on
        // filesystems that reject directory fsync).
        if let Some(parent) = dest.parent() {
            if !parent.as_os_str().is_empty() {
                if let Ok(dir) = File::open(parent) {
                    let _ = dir.sync_all();
                }
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_dir_all(&stage);
    }
    result
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit content digest.
///
/// # Example
///
/// ```
/// use pdn_core::fsio::Digest;
///
/// let mut d = Digest::new();
/// d.update(b"hello");
/// d.update_f64(1.5);
/// let a = d.finish();
/// assert_eq!(a, {
///     let mut d = Digest::new();
///     d.update(b"hello");
///     d.update_f64(1.5);
///     d.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

impl Digest {
    /// Starts a fresh digest.
    pub fn new() -> Digest {
        Digest { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Absorbs a `u64` (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by its bit pattern, so `-0.0` and `0.0` (and every
    /// NaN payload) digest distinctly — the digest keys *bytes*, not values.
    pub fn update_f64(&mut self, v: f64) {
        self.update(&v.to_bits().to_le_bytes());
    }

    /// Absorbs a length-prefixed string, so `("ab","c")` and `("a","bc")`
    /// digest differently.
    pub fn update_str(&mut self, s: &str) {
        self.update_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// The 64-bit digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as a fixed-width lowercase hex string (filesystem-safe;
    /// used as cache file names).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// One-shot digest of a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pdn_fsio_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_creates_and_replaces() {
        let dir = tmp_dir("create");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer payload");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_creates_missing_parents() {
        let dir = tmp_dir("parents");
        let path = dir.join("a/b/c.txt");
        atomic_write(&path, b"nested").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"nested");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_destination_and_no_temp() {
        let dir = tmp_dir("fail");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"intact").unwrap();
        let err = atomic_write_with(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("simulated crash"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // The destination still holds the previous bytes...
        assert_eq!(fs::read(&path).unwrap(), b"intact");
        // ...and no staging debris is left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "staging files left: {leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unrenamed_staging_file_does_not_shadow_destination() {
        // A crash *between* staging and rename leaves only a hidden temp
        // file; the destination path itself is absent or old, so loaders
        // never see a torn artifact.
        let dir = tmp_dir("stage");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"old").unwrap();
        fs::write(tmp_path_for(&path), b"torn").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"old");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publish_dir_swaps_complete_directories() {
        let dir = tmp_dir("publish");
        let dest = dir.join("experiments");
        publish_dir(&dest, |stage| {
            fs::write(stage.join("a.txt"), b"one")?;
            fs::write(stage.join("b.txt"), b"two")
        })
        .unwrap();
        assert_eq!(fs::read(dest.join("a.txt")).unwrap(), b"one");
        // Republish with different contents: old files must not leak into
        // the new publication.
        publish_dir(&dest, |stage| fs::write(stage.join("c.txt"), b"three")).unwrap();
        assert!(!dest.join("a.txt").exists());
        assert_eq!(fs::read(dest.join("c.txt")).unwrap(), b"three");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_publish_keeps_previous_directory() {
        let dir = tmp_dir("publish_fail");
        let dest = dir.join("experiments");
        publish_dir(&dest, |stage| fs::write(stage.join("keep.txt"), b"v1")).unwrap();
        let err = publish_dir(&dest, |stage| {
            fs::write(stage.join("partial.txt"), b"half")?;
            Err(io::Error::other("simulated crash"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // The old publication is intact and no staging debris remains.
        assert_eq!(fs::read(dest.join("keep.txt")).unwrap(), b"v1");
        assert!(!dest.join("partial.txt").exists());
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "staging dirs left: {leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = digest_bytes(b"pdn");
        assert_eq!(a, digest_bytes(b"pdn"));
        assert_ne!(a, digest_bytes(b"pdm"));
        assert_ne!(digest_bytes(b""), 0);
    }

    #[test]
    fn digest_field_framing_distinguishes_splits() {
        let mut a = Digest::new();
        a.update_str("ab");
        a.update_str("c");
        let mut b = Digest::new();
        b.update_str("a");
        b.update_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_separates_float_bit_patterns() {
        let mut a = Digest::new();
        a.update_f64(0.0);
        let mut b = Digest::new();
        b.update_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_16_lowercase_chars() {
        let mut d = Digest::new();
        d.update(b"x");
        let h = d.hex();
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
