//! Typed electrical units.
//!
//! Each unit is a transparent newtype over `f64` implementing the arithmetic
//! that is physically meaningful for it, plus a few cross-unit relations
//! (`V = I·R`, `τ = R·C`, …). Using distinct types prevents the classic EDA
//! bug of feeding a per-square sheet resistance where a via resistance was
//! expected.
//!
//! # Example
//!
//! ```
//! use pdn_core::units::{Amps, Ohms, Volts};
//!
//! let droop: Volts = Amps(0.5) * Ohms(0.02);
//! assert!((droop.0 - 0.01).abs() < 1e-12);
//! assert_eq!(droop.to_millivolts(), 10.0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $sym:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero value of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw `f64` value.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $sym)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two same-unit quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> $name {
                $name(v)
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electric current in amperes.
    Amps,
    "A"
);
unit!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Inductance in henries.
    Henries,
    "H"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);

impl Volts {
    /// Converts to millivolts, the unit used in the paper's tables.
    pub fn to_millivolts(self) -> f64 {
        self.0 * 1e3
    }

    /// Creates a voltage from a value in millivolts.
    pub fn from_millivolts(mv: f64) -> Volts {
        Volts(mv * 1e-3)
    }
}

impl Amps {
    /// Converts to milliamps.
    pub fn to_milliamps(self) -> f64 {
        self.0 * 1e3
    }
}

impl Seconds {
    /// Creates a time from picoseconds (the paper uses `Δt = 1 ps`).
    pub fn from_picos(ps: f64) -> Seconds {
        Seconds(ps * 1e-12)
    }

    /// Creates a time from nanoseconds.
    pub fn from_nanos(ns: f64) -> Seconds {
        Seconds(ns * 1e-9)
    }
}

/// Ohm's law: `V = I · R`.
impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// Ohm's law: `V = R · I`.
impl Mul<Amps> for Ohms {
    type Output = Volts;
    fn mul(self, rhs: Amps) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// `I = V / R`.
impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// `R = V / I`.
impl Div<Amps> for Volts {
    type Output = Ohms;
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

/// RC time constant: `τ = R · C`.
impl Mul<Farads> for Ohms {
    type Output = Seconds;
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// L/R time constant: `τ = L / R`.
impl Div<Ohms> for Henries {
    type Output = Seconds;
    fn div(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// Charge-per-time view of a capacitor under backward Euler: `C / Δt` has
/// the dimension of a conductance; its reciprocal is an equivalent resistance.
impl Div<Seconds> for Henries {
    type Output = Ohms;
    fn div(self, rhs: Seconds) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

/// Conductance in siemens, the reciprocal of [`Ohms`].
///
/// Kept separate from `Ohms` because MNA stamping sums conductances, never
/// resistances.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Siemens(pub f64);

impl Siemens {
    /// Zero conductance.
    pub const ZERO: Siemens = Siemens(0.0);

    /// Returns the raw value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Ohms {
    /// Reciprocal conversion to conductance.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the resistance is zero.
    pub fn to_siemens(self) -> Siemens {
        debug_assert!(self.0 != 0.0, "zero resistance has no conductance");
        Siemens(1.0 / self.0)
    }
}

impl Siemens {
    /// Reciprocal conversion to resistance.
    pub fn to_ohms(self) -> Ohms {
        Ohms(1.0 / self.0)
    }
}

impl Add for Siemens {
    type Output = Siemens;
    fn add(self, rhs: Siemens) -> Siemens {
        Siemens(self.0 + rhs.0)
    }
}

impl AddAssign for Siemens {
    fn add_assign(&mut self, rhs: Siemens) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Siemens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}S", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let v = Amps(2.0) * Ohms(3.0);
        assert_eq!(v, Volts(6.0));
        assert_eq!(v / Ohms(3.0), Amps(2.0));
        assert_eq!(v / Amps(2.0), Ohms(3.0));
    }

    #[test]
    fn millivolt_conversion() {
        assert_eq!(Volts(0.1).to_millivolts(), 100.0);
        assert_eq!(Volts::from_millivolts(100.0), Volts(0.1));
    }

    #[test]
    fn time_constructors() {
        assert!((Seconds::from_picos(1.0).0 - 1e-12).abs() < 1e-24);
        assert!((Seconds::from_nanos(1.0).0 - 1e-9).abs() < 1e-21);
    }

    #[test]
    fn siemens_round_trip() {
        let g = Ohms(4.0).to_siemens();
        assert_eq!(g, Siemens(0.25));
        assert_eq!(g.to_ohms(), Ohms(4.0));
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Volts(1.0) + Volts(2.0) - Volts(0.5);
        assert_eq!(a, Volts(2.5));
        assert_eq!(a * 2.0, Volts(5.0));
        assert_eq!(2.0 * a, Volts(5.0));
        assert_eq!(a / 2.5, Volts(1.0));
        assert_eq!(Volts(3.0) / Volts(1.5), 2.0);
        assert_eq!(Volts(-2.0).abs(), Volts(2.0));
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
        assert_eq!(-Volts(1.0), Volts(-1.0));
    }

    #[test]
    fn sum_iterator() {
        let total: Amps = vec![Amps(1.0), Amps(2.0), Amps(3.0)].into_iter().sum();
        assert_eq!(total, Amps(6.0));
    }

    #[test]
    fn time_constants() {
        assert_eq!(Ohms(2.0) * Farads(3.0), Seconds(6.0));
        assert_eq!(Henries(6.0) / Ohms(3.0), Seconds(2.0));
        assert_eq!(Henries(6.0) / Seconds(2.0), Ohms(3.0));
    }

    #[test]
    fn display_includes_symbol() {
        assert_eq!(Volts(1.5).to_string(), "1.5V");
        assert_eq!(Siemens(2.0).to_string(), "2S");
    }
}
