//! Deterministic random-number-generator construction.
//!
//! Every stochastic component of the workspace (grid perturbation, vector
//! generation, weight initialization, dataset splitting) receives its RNG
//! from here, so a single `u64` seed reproduces an entire experiment.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The concrete RNG used across the workspace.
///
/// ChaCha8 is deterministic across platforms (unlike `StdRng`, whose
/// algorithm is unspecified) which is what makes experiment logs comparable
/// between machines.
pub type Rng = ChaCha8Rng;

/// Creates the workspace RNG from a seed.
///
/// # Example
///
/// ```
/// use pdn_core::rng;
/// use rand::Rng as _;
///
/// let mut a = rng::seeded(42);
/// let mut b = rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Components that each need their own stream (e.g. one per design, one per
/// vector group) use this so that adding a stream never perturbs another.
///
/// # Example
///
/// ```
/// use pdn_core::rng;
/// use rand::Rng as _;
///
/// let mut d1 = rng::derived(7, "design-1");
/// let mut d2 = rng::derived(7, "design-2");
/// assert_ne!(d1.gen::<u64>(), d2.gen::<u64>());
/// ```
/// Size in bytes of a serialized RNG state ([`save_state`]).
pub const STATE_BYTES: usize = rand_chacha::STATE_BYTES;

/// Serializes the full state of a workspace RNG so a consumer (e.g. a
/// training checkpoint) can persist it and later continue the stream
/// bit-identically with [`restore_state`].
///
/// # Example
///
/// ```
/// use pdn_core::rng;
/// use rand::Rng as _;
///
/// let mut r = rng::seeded(5);
/// let _ = r.gen::<f64>(); // advance mid-stream
/// let saved = rng::save_state(&r);
/// let mut resumed = rng::restore_state(&saved);
/// assert_eq!(r.gen::<u64>(), resumed.gen::<u64>());
/// ```
pub fn save_state(rng: &Rng) -> [u8; STATE_BYTES] {
    rng.state_bytes()
}

/// Reconstructs a workspace RNG from [`save_state`] output.
pub fn restore_state(state: &[u8; STATE_BYTES]) -> Rng {
    ChaCha8Rng::from_state_bytes(state)
}

pub fn derived(seed: u64, label: &str) -> Rng {
    // FNV-1a over the label, mixed with the parent seed. Stable and cheap;
    // cryptographic strength is irrelevant here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seeded(seed ^ h.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn seeded_is_deterministic() {
        let xs: Vec<u32> = (0..8).map(|_| 0).scan(seeded(1), |r, _| Some(r.gen())).collect();
        let ys: Vec<u32> = (0..8).map(|_| 0).scan(seeded(1), |r, _| Some(r.gen())).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(seeded(1).gen::<u64>(), seeded(2).gen::<u64>());
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        assert_eq!(derived(9, "a").gen::<u64>(), derived(9, "a").gen::<u64>());
        assert_ne!(derived(9, "a").gen::<u64>(), derived(9, "b").gen::<u64>());
        assert_ne!(derived(9, "a").gen::<u64>(), derived(10, "a").gen::<u64>());
    }
}
