//! Offline shim for the subset of the `rayon` API this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! *sequential* drop-in: every `par_*` entry point returns a plain standard
//! iterator, so `map`/`enumerate`/`for_each`/`collect` chains compile and run
//! unchanged, just on one thread. `map_init` — the one rayon adapter with no
//! std equivalent — is provided by [`iter::ParallelIteratorExt`]. The
//! thread-pool types are no-ops apart from recording the requested width,
//! which [`current_num_threads`] reports so chunk-sizing heuristics keep
//! working. Swapping back to real rayon is a one-line Cargo.toml change; the
//! call sites are already written against the real API.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);
static GLOBAL_BUILT: AtomicBool = AtomicBool::new(false);

/// Reports the pool width requested via [`ThreadPoolBuilder::build_global`],
/// defaulting to 1. Execution is always sequential in this shim; the value
/// only feeds chunk-sizing heuristics at call sites.
pub fn current_num_threads() -> usize {
    CONFIGURED_THREADS.load(Ordering::Relaxed).max(1)
}

/// Error type for [`ThreadPoolBuilder::build_global`]: like real rayon, the
/// global pool can only be built once, and later attempts fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the (virtual) global pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a pool width; 0 means "auto" (1 in this shim).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Records the requested width as the global pool size. Matches real
    /// rayon's contract: the first call wins and later calls return an
    /// error without touching the established width, so callers can detect
    /// (and report) a request that arrived too late to take effect.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        if GLOBAL_BUILT.swap(true, Ordering::SeqCst) {
            return Err(ThreadPoolBuildError(()));
        }
        CONFIGURED_THREADS.store(self.num_threads.max(1), Ordering::Relaxed);
        Ok(())
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// A (virtual) scoped pool: `install` just runs the closure inline.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod iter {
    //! Iterator conversion traits and the `map_init` adapter.

    /// `rayon::iter::IntoParallelIterator`, backed by `IntoIterator`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter` / `par_iter_mut` on anything sliceable.
    pub trait IntoParallelRefIterator<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<S: AsRef<[T]> + ?Sized, T> IntoParallelRefIterator<T> for S {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.as_ref().iter()
        }
    }

    pub trait IntoParallelRefMutIterator<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<S: AsMut<[T]> + ?Sized, T> IntoParallelRefMutIterator<T> for S {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.as_mut().iter_mut()
        }
    }

    /// `par_chunks` / `par_chunks_mut` on slices.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<S: AsRef<[T]> + ?Sized, T> ParallelSlice<T> for S {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.as_ref().chunks(chunk_size)
        }
    }

    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<S: AsMut<[T]> + ?Sized, T> ParallelSliceMut<T> for S {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.as_mut().chunks_mut(chunk_size)
        }
    }

    /// Sequential stand-in for `ParallelIterator::map_init`: one state value
    /// (rayon makes one per worker; this shim has exactly one "worker").
    pub struct MapInit<I, St, F> {
        iter: I,
        state: St,
        f: F,
    }

    impl<I, St, F, R> Iterator for MapInit<I, St, F>
    where
        I: Iterator,
        F: FnMut(&mut St, I::Item) -> R,
    {
        type Item = R;
        fn next(&mut self) -> Option<R> {
            let item = self.iter.next()?;
            Some((self.f)(&mut self.state, item))
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.iter.size_hint()
        }
    }

    /// Rayon adapters with no std-iterator equivalent, blanket-implemented
    /// so the shimmed `par_*` iterators accept them.
    pub trait ParallelIteratorExt: Iterator + Sized {
        fn map_init<Init, St, F, R>(self, init: Init, f: F) -> MapInit<Self, St, F>
        where
            Init: Fn() -> St,
            F: FnMut(&mut St, Self::Item) -> R,
        {
            MapInit {
                iter: self,
                state: init(),
                f,
            }
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}
}

pub mod slice {
    pub use crate::iter::{ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIteratorExt, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chains_compile_and_run() {
        let v = vec![1u32, 2, 3, 4, 5];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6, 8, 10]);

        let mut w = vec![0u32; 5];
        w.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u32);
        assert_eq!(w, [0, 1, 2, 3, 4]);

        let sums: Vec<u32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, [3, 7, 5]);

        let mut z = vec![1u32; 4];
        z.par_chunks_mut(3).for_each(|c| c[0] = 9);
        assert_eq!(z, [9, 1, 1, 9]);

        let r: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(r, [0, 1, 4, 9]);
    }

    #[test]
    fn map_init_uses_one_state() {
        let v = vec![1i64, 2, 3];
        let out: Vec<i64> = v
            .par_iter()
            .map_init(
                || 100i64,
                |acc, x| {
                    *acc += x;
                    *acc
                },
            )
            .collect();
        assert_eq!(out, [101, 103, 106]);
    }

    #[test]
    fn pool_width_round_trips_and_global_builds_once() {
        assert!(super::current_num_threads() >= 1);
        super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        assert_eq!(super::current_num_threads(), 4);
        // Real rayon refuses to rebuild the global pool; the shim must too,
        // and the established width must survive the failed attempt.
        let err = super::ThreadPoolBuilder::new()
            .num_threads(7)
            .build_global()
            .unwrap_err();
        assert!(err.to_string().contains("already been initialized"));
        assert_eq!(super::current_num_threads(), 4);
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.install(super::current_num_threads), 4);
        assert_eq!(pool.current_num_threads(), 2);
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
