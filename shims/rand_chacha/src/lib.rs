//! Offline shim for `rand_chacha::ChaCha8Rng`.
//!
//! Implements the actual ChaCha stream cipher (D. J. Bernstein) with 8
//! double-rounds as a deterministic, platform-independent RNG — the
//! property `pdn-core::rng` documents. The keystream matches the ChaCha
//! specification; the `seed_from_u64` expansion comes from the `rand` shim's
//! SplitMix64 default, so seeds are well-mixed but streams are not
//! bit-compatible with the upstream crate (nothing in this workspace
//! depends on that, only on determinism).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator: 256-bit key (the seed), 64-bit block
/// counter, buffered 64-byte blocks.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    word_pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k", key, 64-bit counter, zero nonce.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = s;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

/// Size in bytes of the serialized generator state
/// ([`ChaCha8Rng::state_bytes`]): 256-bit key, 64-bit block counter,
/// 64-bit word position.
pub const STATE_BYTES: usize = 48;

impl ChaCha8Rng {
    /// Serializes the full generator state. Restoring with
    /// [`ChaCha8Rng::from_state_bytes`] continues the stream at exactly the
    /// next word — the property training checkpoints rely on for
    /// bit-identical resume.
    pub fn state_bytes(&self) -> [u8; STATE_BYTES] {
        let mut out = [0u8; STATE_BYTES];
        for (chunk, k) in out.chunks_exact_mut(4).zip(self.key) {
            chunk.copy_from_slice(&k.to_le_bytes());
        }
        out[32..40].copy_from_slice(&self.counter.to_le_bytes());
        out[40..48].copy_from_slice(&(self.word_pos as u64).to_le_bytes());
        out
    }

    /// Reconstructs a generator from [`ChaCha8Rng::state_bytes`] output.
    /// The block buffer is not stored: it is a pure function of key and
    /// counter, so a partially consumed block is regenerated and fast-
    /// forwarded to the saved word position.
    pub fn from_state_bytes(state: &[u8; STATE_BYTES]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(state[..32].chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let counter = u64::from_le_bytes(state[32..40].try_into().expect("8 bytes"));
        let word_pos =
            (u64::from_le_bytes(state[40..48].try_into().expect("8 bytes")) as usize).min(16);
        let mut rng = ChaCha8Rng { key, counter, buf: [0; 16], word_pos: 16 };
        if word_pos < 16 {
            // The saved state was mid-block: the live buffer came from the
            // block at `counter - 1` (refill advances the counter after
            // generating). Regenerate it, then restore the read position.
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            rng.word_pos = word_pos;
        }
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], word_pos: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn keystream_matches_chacha_spec_shape() {
        // Zero key: first block must be deterministic and non-trivial,
        // and consecutive blocks must differ (counter increments).
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let block1: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(block1, block2);
        assert!(block1.iter().any(|&w| w != 0));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn clone_continues_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.gen::<f64>();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_round_trip_continues_stream_mid_block() {
        // Land mid-block (word_pos = 5) and across a block boundary.
        for consumed in [0usize, 5, 16, 21, 37] {
            let mut fresh = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                let _ = fresh.next_u32();
            }
            let mut restored = ChaCha8Rng::from_state_bytes(&fresh.state_bytes());
            for _ in 0..64 {
                assert_eq!(fresh.next_u32(), restored.next_u32(), "after {consumed} words");
            }
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..4096).map(|_| r.gen()).collect();
        assert!(samples.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
