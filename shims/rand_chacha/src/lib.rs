//! Offline shim for `rand_chacha::ChaCha8Rng`.
//!
//! Implements the actual ChaCha stream cipher (D. J. Bernstein) with 8
//! double-rounds as a deterministic, platform-independent RNG — the
//! property `pdn-core::rng` documents. The keystream matches the ChaCha
//! specification; the `seed_from_u64` expansion comes from the `rand` shim's
//! SplitMix64 default, so seeds are well-mixed but streams are not
//! bit-compatible with the upstream crate (nothing in this workspace
//! depends on that, only on determinism).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator: 256-bit key (the seed), 64-bit block
/// counter, buffered 64-byte blocks.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    word_pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k", key, 64-bit counter, zero nonce.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = s;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], word_pos: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn keystream_matches_chacha_spec_shape() {
        // Zero key: first block must be deterministic and non-trivial,
        // and consecutive blocks must differ (counter increments).
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let block1: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let block2: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        assert_ne!(block1, block2);
        assert!(block1.iter().any(|&w| w != 0));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn clone_continues_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.gen::<f64>();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..4096).map(|_| r.gen()).collect();
        assert!(samples.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
