//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! lightweight wall-clock runner behind criterion's macro/type surface:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Modes (decided once at startup):
//! - **measure** — when the process got cargo's `--bench` flag or
//!   `PDN_BENCH_JSON` is set: per benchmark, one calibration call picks an
//!   iteration count targeting ~`SAMPLE_TARGET_MS` per sample, then
//!   `sample_size` samples are timed and the per-iteration median reported.
//!   `PDN_BENCH_QUICK=1` caps the sample count at 3 for smoke runs.
//! - **smoke** — otherwise (e.g. the bare binary): every benchmark body runs
//!   exactly once so the target doubles as a cheap integration test.
//!
//! With `PDN_BENCH_JSON=<path>`, `criterion_main!` writes a flat JSON object
//! `{"group/name": median_ns, ...}` after all groups finish.

use std::fmt::Display;
use std::time::Instant;

/// Re-export position matches `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const QUICK_SAMPLE_CAP: usize = 3;
/// Target wall-clock per timed sample; short enough to keep full `cargo
/// bench` runs tolerable, long enough to amortize timer overhead.
const SAMPLE_TARGET_MS: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Smoke,
    Measure,
}

fn detect_mode() -> Mode {
    let bench_flag = std::env::args().any(|a| a == "--bench");
    if bench_flag || std::env::var_os("PDN_BENCH_JSON").is_some() {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

fn quick() -> bool {
    std::env::var("PDN_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Benchmark identifier: `BenchmarkId::new("kernel", param)` ⇒ `kernel/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Median ns/iteration, set by [`Bencher::iter`].
    median_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Calibration call doubles as warmup.
        let t0 = Instant::now();
        black_box(routine());
        let single_ns = t0.elapsed().as_nanos().max(1);

        let target_ns = (SAMPLE_TARGET_MS as u128) * 1_000_000;
        let iters = (target_ns / single_ns).clamp(1, 10_000_000) as usize;
        let samples = if quick() {
            self.sample_size.min(QUICK_SAMPLE_CAP)
        } else {
            self.sample_size
        }
        .max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let mid = per_iter.len() / 2;
        let median = if per_iter.len() % 2 == 1 {
            per_iter[mid]
        } else {
            0.5 * (per_iter[mid - 1] + per_iter[mid])
        };
        self.median_ns = Some(median);
    }
}

/// A named group of benchmarks; results accumulate on the parent Criterion.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            median_ns: None,
        };
        f(&mut b);
        self.criterion.record(&full, b.median_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_id(), |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver; collects `(name, median ns)` pairs.
pub struct Criterion {
    mode: Mode,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: detect_mode(), results: Vec::new() }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("standalone");
        group.bench_function(id, f);
        self
    }

    fn record(&mut self, name: &str, median_ns: Option<f64>) {
        match (self.mode, median_ns) {
            (Mode::Smoke, _) => eprintln!("bench {name}: ok (smoke)"),
            (Mode::Measure, Some(ns)) => {
                eprintln!("bench {name}: median {ns:.0} ns/iter");
                self.results.push((name.to_string(), ns));
            }
            // `b.iter` never called — nothing to record.
            (Mode::Measure, None) => eprintln!("bench {name}: no measurement"),
        }
    }

    /// Called by `criterion_main!` after all groups: writes the JSON report
    /// when `PDN_BENCH_JSON` names a path.
    pub fn finalize(&self) {
        let Some(path) = std::env::var_os("PDN_BENCH_JSON") else {
            return;
        };
        let mut entries: Vec<&(String, f64)> = self.results.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (name, ns)) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            out.push_str(&format!("  \"{name}\": {ns:.1}{comma}\n"));
        }
        out.push_str("}\n");
        // Stage-and-rename so a bench run killed mid-write can't leave a
        // torn JSON for the comparison tooling. (The shim stays
        // dependency-free, so this mirrors pdn-core's fsio helper locally.)
        let path = std::path::PathBuf::from(path);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let staged = std::fs::write(&tmp, out).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = staged {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_bodies_once() {
        // Unit tests see no --bench flag, so explicit-mode construction
        // keeps this test independent of the environment.
        let mut c = Criterion { mode: Mode::Smoke, results: Vec::new() };
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
        assert!(c.results.is_empty());
    }

    #[test]
    fn measure_mode_records_a_median() {
        let mut c = Criterion { mode: Mode::Measure, results: Vec::new() };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("id", 7), &3u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].0, "g/id/7");
        assert!(c.results[0].1 > 0.0);
    }
}
