//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal, API-compatible implementation instead of the real crate (see
//! DESIGN.md §5). Only what the workspace calls is provided: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension methods `gen`, `gen_range`,
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. Distributions are uniform;
//! all sampling is deterministic given the generator state, which is all the
//! reproducibility guarantees of `pdn-core::rng` need.

use std::ops::Range;

/// Core source of randomness: 32/64-bit uniform words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits (matches real rand's layout).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open `low..high` range.
pub trait UniformSample: Sized + Copy + PartialOrd {
    /// Draws one value from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as i128 - low as i128) as u128;
                // Widening-multiply range reduction; the bias over a u64
                // draw is < 2^-64 per unit of span, irrelevant here.
                let scaled = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + scaled) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        low + <f64 as Standard>::sample(rng) * (high - low)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        low + <f32 as Standard>::sample(rng) * (high - low)
    }
}

/// Convenience extension methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the type's full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 exactly
    /// like real rand's default implementation: convenient, well-mixed and
    /// collision-free across nearby seeds.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Slice helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a mixer — good enough to test ranges.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            z ^ (z >> 33)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..0.5);
            assert!((-2.0..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom as _;
        let mut v: Vec<usize> = (0..50).collect();
        let mut r = Counter(11);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
