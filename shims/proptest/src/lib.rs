//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! small deterministic property runner behind the same macro surface:
//! `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) {..} }`,
//! `prop_assert!`/`prop_assert_eq!`, and the strategies the tests actually
//! draw from — integer/float `Range`s and `prop::collection::vec`. No
//! shrinking: a failing case panics with the drawn inputs in the message
//! (the `Debug` payload), which is enough to reproduce since the run is
//! fully deterministic (seed = FNV-1a of the test name).

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`, 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A source of random values of one type (no shrinking in this shim).
    pub trait Strategy {
        type Value: std::fmt::Debug;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let scaled = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + scaled) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec`: a vector of `len` draws from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by this shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Matches upstream proptest's default case count.
            Config { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Strategy constructors namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Expands each `#[test] fn name(args in strategies) { body }` into a plain
/// test that draws `cases` deterministic inputs and runs the body per draw.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($config:expr);) => {};
    (cfg = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::TestRng::from_seed($crate::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                // Render inputs up front: the body is free to consume them.
                let inputs = format!("{:?}", ($(&$arg,)+));
                let case_fn = move || -> ::std::result::Result<(), ::std::boxed::Box<dyn ::std::error::Error>> {
                    $body
                    Ok(())
                };
                let outcome = case_fn();
                if let Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}\ninputs: {inputs}");
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($config); $($rest)* }
    };
}

/// `assert!` that reports the failing proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn int_ranges_in_bounds(n in 3usize..17, s in -5i64..5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-5..5).contains(&s));
        }

        #[test]
        fn float_ranges_in_bounds(x in -2.0f64..3.0, y in 0.5f32..0.75) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((0.5..0.75).contains(&y));
        }

        #[test]
        fn vec_lengths(
            fixed in prop::collection::vec(0.0f64..1.0, 7),
            ranged in prop::collection::vec(-1.0f64..1.0, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..6).contains(&ranged.len()));
            prop_assert!(fixed.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(a in 0u64..10) {
            prop_assert_ne!(a, 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::from_seed(crate::fnv1a("x"));
        let mut r2 = crate::TestRng::from_seed(crate::fnv1a("x"));
        for _ in 0..32 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
