//! Cross-crate physical invariants of the simulation substrate.

use pdn_wnv::core::units::Seconds;
use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::sim::static_ir::StaticAnalysis;
use pdn_wnv::sim::transient::TransientSimulator;
use pdn_wnv::sim::wnv::WnvRunner;
use pdn_wnv::vectors::scenario::Scenario;
use pdn_wnv::vectors::vector::TestVector;

fn grid() -> pdn_wnv::grid::build::PowerGrid {
    DesignPreset::D1.spec(DesignScale::Tiny).build(3).expect("valid preset")
}

#[test]
fn static_solution_superposes() {
    // The PDN is linear: droop(a + b) == droop(a) + droop(b).
    let g = grid();
    let dc = StaticAnalysis::new(&g).expect("dc");
    let n = g.loads().len();
    let ia: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 2e-3 } else { 0.0 }).collect();
    let ib: Vec<f64> = (0..n).map(|i| if i % 2 == 1 { 3e-3 } else { 0.0 }).collect();
    let iab: Vec<f64> = ia.iter().zip(&ib).map(|(a, b)| a + b).collect();
    let va = dc.solve(&ia).expect("solve");
    let vb = dc.solve(&ib).expect("solve");
    let vab = dc.solve(&iab).expect("solve");
    let vdd = 1.0;
    for ((a, b), ab) in va.iter().zip(&vb).zip(&vab) {
        let droop_sum = (vdd - a) + (vdd - b);
        let droop_joint = vdd - ab;
        assert!((droop_sum - droop_joint).abs() < 1e-6, "{droop_sum} vs {droop_joint}");
    }
}

#[test]
fn transient_superposes_too() {
    // Backward Euler preserves linearity step by step.
    let g = grid();
    let sim = TransientSimulator::new(&g).expect("sim");
    let n = g.loads().len();
    let steps = 30;
    let dt = g.spec().time_step();
    let mk = |phase: usize| -> TestVector {
        let data: Vec<f64> = (0..steps * n)
            .map(|i| if (i / n + phase).is_multiple_of(3) { 1e-3 } else { 0.0 })
            .collect();
        TestVector::from_flat(steps, n, data, dt)
    };
    let va = sim.run_full(&mk(0)).expect("run").0;
    let vb = sim.run_full(&mk(1)).expect("run").0;
    let joint_data: Vec<f64> = {
        let a = mk(0);
        let b = mk(1);
        (0..steps)
            .flat_map(|k| {
                let (sa, sb) = (a.step(k).to_vec(), b.step(k).to_vec());
                sa.into_iter().zip(sb).map(|(x, y)| x + y).collect::<Vec<_>>()
            })
            .collect()
    };
    let vab = sim.run_full(&TestVector::from_flat(steps, n, joint_data, dt)).expect("run").0;
    for k in 0..steps {
        for ((a, b), ab) in va[k].iter().zip(&vb[k]).zip(&vab[k]) {
            let droop_sum = (1.0 - a) + (1.0 - b);
            let droop_joint = 1.0 - ab;
            assert!(
                (droop_sum - droop_joint).abs() < 1e-6,
                "step {k}: {droop_sum} vs {droop_joint}"
            );
        }
    }
}

#[test]
fn worst_case_noise_is_monotone_in_current() {
    // Scaling every load current up cannot reduce the worst-case noise.
    let g = grid();
    let runner = WnvRunner::new(&g).expect("runner");
    let base = Scenario::IdleThenBurst.render(&g, 60);
    let n = base.load_count();
    let scaled = TestVector::from_flat(
        base.step_count(),
        n,
        (0..base.step_count())
            .flat_map(|k| base.step(k).iter().map(|i| i * 1.5).collect::<Vec<_>>())
            .collect(),
        base.time_step(),
    );
    let r1 = runner.run(&base).expect("run");
    let r2 = runner.run(&scaled).expect("run");
    assert!(r2.max_noise.0 > r1.max_noise.0);
    // Per tile as well (linearity ⇒ exact scaling).
    for (a, b) in r1.worst_noise.as_slice().iter().zip(r2.worst_noise.as_slice()) {
        assert!(b + 1e-12 >= *a, "tile noise decreased: {a} -> {b}");
    }
}

#[test]
fn noise_concentrates_near_active_cluster() {
    // Activate only cluster 0's loads; the worst tile must be nearer to
    // that cluster's centroid than to the centroid of the idle loads.
    let g = grid();
    let runner = WnvRunner::new(&g).expect("runner");
    let n = g.loads().len();
    let steps = 60;
    let data: Vec<f64> = (0..steps)
        .flat_map(|_| {
            g.loads()
                .iter()
                .map(|l| if l.cluster == 0 { 5e-3 } else { 0.0 })
                .collect::<Vec<_>>()
        })
        .collect();
    let v = TestVector::from_flat(steps, n, data, g.spec().time_step());
    let report = runner.run(&v).expect("run");
    let worst_tile = report.worst_noise.argmax();
    let tiles = g.tile_grid();
    let worst_center = tiles.tile_center(worst_tile);

    let centroid = |cluster: usize| {
        let pts: Vec<_> =
            g.loads().iter().filter(|l| l.cluster == cluster).map(|l| l.position).collect();
        pdn_wnv::core::geom::Point::new(
            pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64,
            pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64,
        )
    };
    let active = centroid(0);
    let idle = centroid(1);
    assert!(
        worst_center.distance_to(active) < worst_center.distance_to(idle),
        "worst tile {worst_tile:?} closer to idle cluster"
    );
}

#[test]
fn longer_trace_cannot_reduce_worst_case() {
    // Eq. (1): the max over a longer timespan dominates the shorter one.
    let g = grid();
    let runner = WnvRunner::new(&g).expect("runner");
    let long = Scenario::IdleThenBurst.render(&g, 80);
    let keep: Vec<usize> = (0..40).collect();
    let short = long.select_steps(&keep);
    let r_long = runner.run(&long).expect("run");
    let r_short = runner.run(&short).expect("run");
    assert!(r_long.max_noise.0 + 1e-12 >= r_short.max_noise.0);
}

#[test]
fn finer_time_step_converges() {
    // Halving Δt should change the DC-settled solution only slightly
    // (backward Euler is consistent). Compare steady-state droop.
    let spec = DesignPreset::D1.spec(DesignScale::Tiny);
    let g = spec.build(3).expect("valid");
    let n = g.loads().len();
    let sim = TransientSimulator::new(&g).expect("sim");
    let steps = 400;
    let v = TestVector::from_flat(
        steps,
        n,
        vec![1e-3; steps * n],
        Seconds(g.spec().time_step().0),
    );
    let (volts, _) = sim.run_full(&v).expect("run");
    let settled = volts.last().expect("steps");
    let dc = StaticAnalysis::new(&g).expect("dc").solve(&vec![1e-3; n]).expect("solve");
    for (t, d) in settled.iter().zip(&dc) {
        assert!((t - d).abs() < 5e-4, "settled {t} vs dc {d}");
    }
}
