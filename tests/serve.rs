//! End-to-end tests for the `pdn serve` daemon: real TCP sockets, raw
//! HTTP/1.1, concurrent clients. The central claim is the bitwise one —
//! answers served through the batching daemon are identical to offline
//! [`Predictor::predict`] calls, even when requests coalesce into
//! multi-map batches — plus liveness (/healthz, /metrics), the simulate
//! path, error statuses, and the fail-fast bundle check.

use pdn_wnv::eval::jsonl;
use pdn_wnv::eval::serve::batcher::BatchConfig;
use pdn_wnv::eval::serve::{self, ServeConfig};
use pdn_wnv::features::normalize::Normalizer;
use pdn_wnv::grid::build::PowerGrid;
use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::model::model::{ModelConfig, Predictor, WnvModel};
use pdn_wnv::nn::tensor::Tensor;
use pdn_wnv::sim::wnv::WnvRunner;
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};
use pdn_wnv::vectors::vector::TestVector;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn tiny_grid() -> PowerGrid {
    DesignPreset::D1.spec(DesignScale::Tiny).build(1).unwrap()
}

/// A deterministic bundle for `grid`: same `seed` → bitwise-identical
/// predictors, which lets one instance serve and a twin act as the offline
/// reference.
fn fixture_predictor(grid: &PowerGrid, seed: u64) -> Predictor {
    let tiles = grid.tile_grid();
    let (rows, cols) = (tiles.rows(), tiles.cols());
    let bumps = grid.bumps().len();
    let distance = Tensor::from_fn3(bumps, rows, cols, |b, r, c| {
        ((b * 13 + r * 5 + c) % 17) as f32 * 0.06
    });
    Predictor::from_parts(
        WnvModel::new(bumps, ModelConfig { c1: 2, c2: 2, c3: 2 }, seed),
        distance,
        Normalizer::with_scale(2.0),
        Normalizer::with_scale(3.0),
        None,
    )
}

fn vectors_for(grid: &PowerGrid, count: usize, seed: u64) -> Vec<TestVector> {
    let gen = VectorGenerator::new(grid, GeneratorConfig { steps: 16, ..Default::default() });
    gen.generate_group(count, seed)
}

/// Sends one request (with optional extra request headers) and returns
/// `(status, response_headers, body)`; header names come back lowercased.
/// The server always closes the connection after answering, so the client
/// reads to EOF.
fn http_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n", body.len())
        .unwrap();
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n").unwrap();
    }
    stream.write_all(b"\r\n").unwrap();
    stream.write_all(body).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// [`http_full`] without extra headers, dropping the response headers.
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let (status, _, body) = http_full(addr, method, path, &[], body);
    (status, body)
}

fn csv_bytes(vector: &TestVector) -> Vec<u8> {
    let mut out = Vec::new();
    pdn_wnv::vectors::io::write_csv(vector, &mut out).unwrap();
    out
}

fn map_field(parsed: &jsonl::Json) -> Vec<f64> {
    parsed
        .get("map")
        .and_then(|m| m.as_array())
        .expect("map array")
        .iter()
        .map(|v| v.as_f64().expect("map entry is a number"))
        .collect()
}

#[test]
fn concurrent_predicts_are_bitwise_identical_to_offline_and_coalesce() {
    let grid = tiny_grid();
    let mut offline = fixture_predictor(&grid, 9);
    let served = fixture_predictor(&grid, 9);
    let runner = WnvRunner::new(&grid).unwrap();
    let vectors = vectors_for(&grid, 6, 33);
    let expected: Vec<Vec<f64>> =
        vectors.iter().map(|v| offline.predict(&grid, v).as_slice().to_vec()).collect();

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: vectors.len(),
        // A wide-open window so simultaneous clients must share a batch.
        predict_batch: BatchConfig { max_batch: 8, max_wait: Duration::from_millis(300) },
        ..ServeConfig::default()
    };
    let server = serve::serve(&cfg, "D1-tiny", grid.clone(), served, runner, None).unwrap();
    let addr = server.local_addr();

    // Up to a few rounds: batch formation is timing-dependent, and the
    // barrier makes coalescing overwhelmingly likely per round, not certain.
    for round in 0..5 {
        let barrier = Arc::new(Barrier::new(vectors.len()));
        let answers: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = vectors
                .iter()
                .map(|vector| {
                    let barrier = Arc::clone(&barrier);
                    let body = csv_bytes(vector);
                    scope.spawn(move || {
                        barrier.wait();
                        let (status, body) = http(addr, "POST", "/predict", &body);
                        assert_eq!(status, 200, "predict failed: {body}");
                        let parsed = jsonl::parse(&body).unwrap();
                        let width = parsed.get("batch_width").unwrap().as_u64().unwrap();
                        (map_field(&parsed), width)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for ((got, _), want) in answers.iter().zip(&expected) {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits(), "served value differs from offline predict");
            }
        }
        if server.stats().predict.max_width() > 1 {
            assert!(
                answers.iter().any(|(_, w)| *w > 1),
                "a multi-request batch must be visible in some response"
            );
            server.shutdown();
            return;
        }
        eprintln!("round {round}: no batch wider than 1 yet, retrying");
    }
    panic!("six barrier-synchronised clients never shared a batch in 5 rounds");
}

#[test]
fn simulate_endpoint_matches_offline_runner_bitwise() {
    let grid = tiny_grid();
    let predictor = fixture_predictor(&grid, 4);
    let runner = WnvRunner::new(&grid).unwrap();
    let vector = vectors_for(&grid, 1, 55).remove(0);
    let want = WnvRunner::new(&grid).unwrap().run(&vector).unwrap();

    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    let server = serve::serve(&cfg, "D1-tiny", grid, predictor, runner, None).unwrap();
    let (status, body) = http(server.local_addr(), "POST", "/simulate", &csv_bytes(&vector));
    assert_eq!(status, 200, "{body}");
    let parsed = jsonl::parse(&body).unwrap();
    assert_eq!(parsed.get("kind").unwrap().as_str(), Some("simulate"));
    assert_eq!(parsed.get("sim_steps").unwrap().as_u64(), Some(want.stats.steps as u64));
    let got = map_field(&parsed);
    assert_eq!(got.len(), want.worst_noise.as_slice().len());
    for (g, w) in got.iter().zip(want.worst_noise.as_slice()) {
        assert_eq!(g.to_bits(), w.to_bits(), "served simulation differs from offline run");
    }
    server.shutdown();
}

#[test]
fn health_metrics_and_error_statuses() {
    let grid = tiny_grid();
    let loads = grid.loads().len();
    let predictor = fixture_predictor(&grid, 2);
    let runner = WnvRunner::new(&grid).unwrap();
    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    let server = serve::serve(&cfg, "D1-tiny", grid, predictor, runner, None).unwrap();
    let addr = server.local_addr();

    let (status, body) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = jsonl::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("design").unwrap().as_str(), Some("D1-tiny"));
    assert_eq!(health.get("loads").unwrap().as_u64(), Some(loads as u64));

    // One real prediction so the batcher histograms exist when /metrics
    // is scraped below.
    let vector = vectors_for(&tiny_grid(), 1, 77).remove(0);
    let (status, body) = http(addr, "POST", "/predict", &csv_bytes(&vector));
    assert_eq!(status, 200, "{body}");

    // Default /metrics is Prometheus text: typed families, counters with
    // the _total suffix, cumulative histogram buckets ending at +Inf.
    let (status, headers, body) = http_full(addr, "GET", "/metrics", &[], b"");
    assert_eq!(status, 200);
    assert!(
        header(&headers, "content-type").unwrap().starts_with("text/plain; version=0.0.4"),
        "{headers:?}"
    );
    assert!(body.contains("# TYPE serve_requests_total counter"), "{body}");
    assert!(body.contains("# TYPE serve_started_total counter"), "{body}");
    assert!(body.contains("# TYPE serve_in_flight gauge"), "{body}");
    assert!(body.contains("# TYPE serve_predict_batch_width histogram"), "{body}");
    assert!(body.contains("serve_predict_batch_width_bucket{le=\"+Inf\"}"), "{body}");
    assert!(body.contains("serve_window_predict_p99_seconds"), "{body}");
    assert!(!body.contains("\"kind\""), "Prometheus text must not be JSONL: {body}");

    // The raw registry snapshot stays reachable via content negotiation.
    for (path, extra) in [
        ("/metrics?format=jsonl", &[][..]),
        ("/metrics", &[("Accept", "application/x-ndjson")][..]),
    ] {
        let (status, headers, body) = http_full(addr, "GET", path, extra, b"");
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "content-type"), Some("application/x-ndjson"));
        let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
        assert!(!lines.is_empty(), "metrics snapshot must not be empty");
        for line in lines {
            jsonl::parse(line)
                .unwrap_or_else(|e| panic!("unparseable metrics line {line:?}: {e}"));
        }
        assert!(body.contains("serve.started"), "{body}");
    }

    // /statusz summarizes the rolling windows as one JSON object.
    let (status, body) = http(addr, "GET", "/statusz", b"");
    assert_eq!(status, 200);
    let statusz = jsonl::parse(&body).unwrap_or_else(|e| panic!("bad statusz {body:?}: {e}"));
    assert_eq!(statusz.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(statusz.get("window_s").unwrap().as_u64(), Some(60));
    let routes = statusz.get("routes").expect("routes object");
    let predict = routes.get("predict").expect("predict route window");
    assert!(predict.get("count").unwrap().as_u64().unwrap() >= 1, "{body}");
    assert!(predict.get("p99_s").unwrap().as_f64().unwrap() > 0.0, "{body}");

    let (status, body) = http(addr, "POST", "/predict", b"not,a,vector");
    assert_eq!(status, 400, "{body}");
    assert!(jsonl::parse(&body).unwrap().get("error").is_some());
    let (status, _) = http(addr, "GET", "/predict", b"");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "GET", "/nope", b"");
    assert_eq!(status, 404);
    // A vector with the wrong number of load columns is a client error,
    // answered before anything reaches the predictor.
    let wrong = b"0.0,0.1\n0.0,0.2\n";
    let (status, body) = http(addr, "POST", "/predict", wrong);
    assert_eq!(status, 400, "{body}");

    assert!(server.stats().errors.load(std::sync::atomic::Ordering::Relaxed) >= 4);
    server.shutdown();
}

#[test]
fn request_ids_round_trip_through_header_json_and_access_log() {
    let grid = tiny_grid();
    let predictor = fixture_predictor(&grid, 6);
    let runner = WnvRunner::new(&grid).unwrap();
    let vectors = vectors_for(&grid, 6, 21);
    let log_path = std::env::temp_dir()
        .join(format!("pdn-serve-access-{}-{:p}.jsonl", std::process::id(), &grid));
    let _ = std::fs::remove_file(&log_path);

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: vectors.len() + 1,
        // A wide-open window so the concurrent clients share batches and
        // the logged batch widths are interesting.
        predict_batch: BatchConfig { max_batch: 8, max_wait: Duration::from_millis(300) },
        access_log: Some(log_path.clone()),
        ..ServeConfig::default()
    };
    let server = serve::serve(&cfg, "D1-tiny", grid, predictor, runner, None).unwrap();
    let addr = server.local_addr();

    // Concurrent clients, each with its own ID.
    let barrier = Arc::new(Barrier::new(vectors.len()));
    let answers: Vec<(String, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..vectors.len())
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let body = csv_bytes(&vectors[i]);
                scope.spawn(move || {
                    barrier.wait();
                    let id = format!("client-{i}");
                    let (status, headers, body) = http_full(
                        addr,
                        "POST",
                        "/predict",
                        &[("x-pdn-request-id", id.as_str())],
                        &body,
                    );
                    assert_eq!(status, 200, "{body}");
                    assert_eq!(
                        header(&headers, "x-pdn-request-id"),
                        Some(id.as_str()),
                        "client-supplied ID must be echoed"
                    );
                    let parsed = jsonl::parse(&body).unwrap();
                    assert_eq!(parsed.get("request_id").unwrap().as_str(), Some(id.as_str()));
                    (id, parsed.get("batch_width").unwrap().as_u64().unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // A request without an ID gets a server-minted one.
    let (status, headers, _) = http_full(addr, "GET", "/healthz", &[], b"");
    assert_eq!(status, 200);
    let minted = header(&headers, "x-pdn-request-id").expect("server-minted ID");
    assert!(!minted.is_empty() && minted.contains('-'), "{minted:?}");
    // An unusable client ID (embedded space) is replaced, not echoed.
    let (_, headers, _) = http_full(addr, "GET", "/healthz", &[("x-pdn-request-id", "a b")], b"");
    assert_ne!(header(&headers, "x-pdn-request-id"), Some("a b"));

    server.shutdown();

    // Every request appears in the access log exactly once, under its ID,
    // with the batch width its response reported.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let mut logged = std::collections::HashMap::new();
    for line in log.lines().filter(|l| !l.is_empty()) {
        let rec = jsonl::parse(line).unwrap_or_else(|e| panic!("bad access line {line:?}: {e}"));
        let id = rec.get("id").unwrap().as_str().unwrap().to_string();
        assert!(logged.insert(id, rec).is_none(), "duplicate access-log id");
    }
    for (id, width) in &answers {
        let rec = logged.get(id).unwrap_or_else(|| panic!("no access-log line for {id}"));
        assert_eq!(rec.get("route").unwrap().as_str(), Some("predict"));
        assert_eq!(rec.get("status").unwrap().as_u64(), Some(200));
        assert_eq!(
            rec.get("batch_width").unwrap().as_u64(),
            Some(*width),
            "logged batch width must match the response JSON for {id}"
        );
        assert!(rec.get("total_us").unwrap().as_u64().unwrap() > 0);
    }
    assert!(logged.contains_key(minted), "minted ID must reach the log too");
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn max_queue_sheds_load_with_429_and_retry_after() {
    let grid = tiny_grid();
    let predictor = fixture_predictor(&grid, 8);
    let runner = WnvRunner::new(&grid).unwrap();
    let vectors = vectors_for(&grid, 6, 91);

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: vectors.len() + 1,
        // A long batch-forming window: the one admitted job holds its
        // pending slot for ~300 ms, so barrier-synchronised stragglers
        // deterministically find the queue full.
        predict_batch: BatchConfig { max_batch: 8, max_wait: Duration::from_millis(300) },
        max_queue: 1,
        ..ServeConfig::default()
    };
    let server = serve::serve(&cfg, "D1-tiny", grid, predictor, runner, None).unwrap();
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(vectors.len()));
    let statuses: Vec<(u16, Option<String>, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = vectors
            .iter()
            .map(|vector| {
                let barrier = Arc::clone(&barrier);
                let body = csv_bytes(vector);
                scope.spawn(move || {
                    barrier.wait();
                    let (status, headers, body) =
                        http_full(addr, "POST", "/predict", &[], &body);
                    (status, header(&headers, "retry-after").map(str::to_string), body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = statuses.iter().filter(|(s, _, _)| *s == 200).count();
    let shed = statuses.iter().filter(|(s, _, _)| *s == 429).count();
    assert_eq!(ok + shed, vectors.len(), "only 200s and 429s expected: {statuses:?}");
    assert!(ok >= 1, "at least one request must be admitted");
    assert!(shed >= 1, "a 1-deep queue must shed some of 6 simultaneous requests");
    for (status, retry_after, body) in &statuses {
        if *status == 429 {
            assert_eq!(retry_after.as_deref(), Some("1"), "429 must carry Retry-After");
            let parsed = jsonl::parse(body).unwrap();
            assert!(parsed.get("error").unwrap().as_str().unwrap().contains("queue full"));
        }
    }

    // The shed requests are visible to operators: counter + statusz.
    let (status, body) = http(addr, "GET", "/statusz", b"");
    assert_eq!(status, 200);
    let statusz = jsonl::parse(&body).unwrap();
    assert_eq!(statusz.get("max_queue").unwrap().as_u64(), Some(1));
    assert_eq!(statusz.get("rejected_total").unwrap().as_u64(), Some(shed as u64));
    server.shutdown();
}

#[test]
fn serve_refuses_a_mismatched_bundle_up_front() {
    let grid = tiny_grid();
    let tiles = grid.tile_grid();
    let bumps = grid.bumps().len();
    // Distance features for a different tile grid: one extra row.
    let wrong = Predictor::from_parts(
        WnvModel::new(bumps, ModelConfig { c1: 2, c2: 2, c3: 2 }, 3),
        Tensor::filled(&[bumps, tiles.rows() + 1, tiles.cols()], 0.5),
        Normalizer::with_scale(2.0),
        Normalizer::with_scale(3.0),
        None,
    );
    let runner = WnvRunner::new(&grid).unwrap();
    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    let err = serve::serve(&cfg, "D1-tiny", grid, wrong, runner, None)
        .err()
        .expect("mismatched bundle must fail fast at startup");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let msg = err.to_string();
    assert!(msg.contains("tile grid"), "{msg}");
}
