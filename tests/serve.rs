//! End-to-end tests for the `pdn serve` daemon: real TCP sockets, raw
//! HTTP/1.1, concurrent clients. The central claim is the bitwise one —
//! answers served through the batching daemon are identical to offline
//! [`Predictor::predict`] calls, even when requests coalesce into
//! multi-map batches — plus liveness (/healthz, /metrics), the simulate
//! path, error statuses, and the fail-fast bundle check.

use pdn_wnv::eval::jsonl;
use pdn_wnv::eval::serve::batcher::BatchConfig;
use pdn_wnv::eval::serve::{self, ServeConfig};
use pdn_wnv::features::normalize::Normalizer;
use pdn_wnv::grid::build::PowerGrid;
use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::model::model::{ModelConfig, Predictor, WnvModel};
use pdn_wnv::nn::tensor::Tensor;
use pdn_wnv::sim::wnv::WnvRunner;
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};
use pdn_wnv::vectors::vector::TestVector;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn tiny_grid() -> PowerGrid {
    DesignPreset::D1.spec(DesignScale::Tiny).build(1).unwrap()
}

/// A deterministic bundle for `grid`: same `seed` → bitwise-identical
/// predictors, which lets one instance serve and a twin act as the offline
/// reference.
fn fixture_predictor(grid: &PowerGrid, seed: u64) -> Predictor {
    let tiles = grid.tile_grid();
    let (rows, cols) = (tiles.rows(), tiles.cols());
    let bumps = grid.bumps().len();
    let distance = Tensor::from_fn3(bumps, rows, cols, |b, r, c| {
        ((b * 13 + r * 5 + c) % 17) as f32 * 0.06
    });
    Predictor::from_parts(
        WnvModel::new(bumps, ModelConfig { c1: 2, c2: 2, c3: 2 }, seed),
        distance,
        Normalizer::with_scale(2.0),
        Normalizer::with_scale(3.0),
        None,
    )
}

fn vectors_for(grid: &PowerGrid, count: usize, seed: u64) -> Vec<TestVector> {
    let gen = VectorGenerator::new(grid, GeneratorConfig { steps: 16, ..Default::default() });
    gen.generate_group(count, seed)
}

/// Sends one request and returns `(status, body)`. The server always
/// closes the connection after answering, so the client reads to EOF.
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", body.len())
        .unwrap();
    stream.write_all(body).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn csv_bytes(vector: &TestVector) -> Vec<u8> {
    let mut out = Vec::new();
    pdn_wnv::vectors::io::write_csv(vector, &mut out).unwrap();
    out
}

fn map_field(parsed: &jsonl::Json) -> Vec<f64> {
    parsed
        .get("map")
        .and_then(|m| m.as_array())
        .expect("map array")
        .iter()
        .map(|v| v.as_f64().expect("map entry is a number"))
        .collect()
}

#[test]
fn concurrent_predicts_are_bitwise_identical_to_offline_and_coalesce() {
    let grid = tiny_grid();
    let mut offline = fixture_predictor(&grid, 9);
    let served = fixture_predictor(&grid, 9);
    let runner = WnvRunner::new(&grid).unwrap();
    let vectors = vectors_for(&grid, 6, 33);
    let expected: Vec<Vec<f64>> =
        vectors.iter().map(|v| offline.predict(&grid, v).as_slice().to_vec()).collect();

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: vectors.len(),
        // A wide-open window so simultaneous clients must share a batch.
        predict_batch: BatchConfig { max_batch: 8, max_wait: Duration::from_millis(300) },
        ..ServeConfig::default()
    };
    let server = serve::serve(&cfg, "D1-tiny", grid.clone(), served, runner, None).unwrap();
    let addr = server.local_addr();

    // Up to a few rounds: batch formation is timing-dependent, and the
    // barrier makes coalescing overwhelmingly likely per round, not certain.
    for round in 0..5 {
        let barrier = Arc::new(Barrier::new(vectors.len()));
        let answers: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = vectors
                .iter()
                .map(|vector| {
                    let barrier = Arc::clone(&barrier);
                    let body = csv_bytes(vector);
                    scope.spawn(move || {
                        barrier.wait();
                        let (status, body) = http(addr, "POST", "/predict", &body);
                        assert_eq!(status, 200, "predict failed: {body}");
                        let parsed = jsonl::parse(&body).unwrap();
                        let width = parsed.get("batch_width").unwrap().as_u64().unwrap();
                        (map_field(&parsed), width)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for ((got, _), want) in answers.iter().zip(&expected) {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits(), "served value differs from offline predict");
            }
        }
        if server.stats().predict.max_width() > 1 {
            assert!(
                answers.iter().any(|(_, w)| *w > 1),
                "a multi-request batch must be visible in some response"
            );
            server.shutdown();
            return;
        }
        eprintln!("round {round}: no batch wider than 1 yet, retrying");
    }
    panic!("six barrier-synchronised clients never shared a batch in 5 rounds");
}

#[test]
fn simulate_endpoint_matches_offline_runner_bitwise() {
    let grid = tiny_grid();
    let predictor = fixture_predictor(&grid, 4);
    let runner = WnvRunner::new(&grid).unwrap();
    let vector = vectors_for(&grid, 1, 55).remove(0);
    let want = WnvRunner::new(&grid).unwrap().run(&vector).unwrap();

    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    let server = serve::serve(&cfg, "D1-tiny", grid, predictor, runner, None).unwrap();
    let (status, body) = http(server.local_addr(), "POST", "/simulate", &csv_bytes(&vector));
    assert_eq!(status, 200, "{body}");
    let parsed = jsonl::parse(&body).unwrap();
    assert_eq!(parsed.get("kind").unwrap().as_str(), Some("simulate"));
    assert_eq!(parsed.get("sim_steps").unwrap().as_u64(), Some(want.stats.steps as u64));
    let got = map_field(&parsed);
    assert_eq!(got.len(), want.worst_noise.as_slice().len());
    for (g, w) in got.iter().zip(want.worst_noise.as_slice()) {
        assert_eq!(g.to_bits(), w.to_bits(), "served simulation differs from offline run");
    }
    server.shutdown();
}

#[test]
fn health_metrics_and_error_statuses() {
    let grid = tiny_grid();
    let loads = grid.loads().len();
    let predictor = fixture_predictor(&grid, 2);
    let runner = WnvRunner::new(&grid).unwrap();
    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    let server = serve::serve(&cfg, "D1-tiny", grid, predictor, runner, None).unwrap();
    let addr = server.local_addr();

    let (status, body) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = jsonl::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("design").unwrap().as_str(), Some("D1-tiny"));
    assert_eq!(health.get("loads").unwrap().as_u64(), Some(loads as u64));

    let (status, body) = http(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "metrics snapshot must not be empty");
    for line in lines {
        jsonl::parse(line).unwrap_or_else(|e| panic!("unparseable metrics line {line:?}: {e}"));
    }
    assert!(body.contains("serve.started"), "{body}");

    let (status, body) = http(addr, "POST", "/predict", b"not,a,vector");
    assert_eq!(status, 400, "{body}");
    assert!(jsonl::parse(&body).unwrap().get("error").is_some());
    let (status, _) = http(addr, "GET", "/predict", b"");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "GET", "/nope", b"");
    assert_eq!(status, 404);
    // A vector with the wrong number of load columns is a client error,
    // answered before anything reaches the predictor.
    let wrong = b"0.0,0.1\n0.0,0.2\n";
    let (status, body) = http(addr, "POST", "/predict", wrong);
    assert_eq!(status, 400, "{body}");

    assert!(server.stats().errors.load(std::sync::atomic::Ordering::Relaxed) >= 4);
    server.shutdown();
}

#[test]
fn serve_refuses_a_mismatched_bundle_up_front() {
    let grid = tiny_grid();
    let tiles = grid.tile_grid();
    let bumps = grid.bumps().len();
    // Distance features for a different tile grid: one extra row.
    let wrong = Predictor::from_parts(
        WnvModel::new(bumps, ModelConfig { c1: 2, c2: 2, c3: 2 }, 3),
        Tensor::filled(&[bumps, tiles.rows() + 1, tiles.cols()], 0.5),
        Normalizer::with_scale(2.0),
        Normalizer::with_scale(3.0),
        None,
    );
    let runner = WnvRunner::new(&grid).unwrap();
    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    let err = serve::serve(&cfg, "D1-tiny", grid, wrong, runner, None)
        .err()
        .expect("mismatched bundle must fail fast at startup");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let msg = err.to_string();
    assert!(msg.contains("tile grid"), "{msg}");
}
