//! Cross-model integration: the proposed model against the PowerNet
//! baseline and against the static-analysis shortcut.

use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig};
use pdn_wnv::eval::metrics;
use pdn_wnv::grid::design::DesignPreset;
use pdn_wnv::powernet::model::PowerNetTrainConfig;
use pdn_wnv::powernet::{PowerNet, PowerNetConfig, PowerNetDataset};
use pdn_wnv::sim::static_ir::StaticAnalysis;
use std::time::Instant;

#[test]
fn powernet_trains_on_the_same_data_and_ours_is_faster() {
    let cfg = ExperimentConfig::quick();
    let mut eval = EvaluatedDesign::evaluate(DesignPreset::D4, &cfg).expect("pipeline");

    let pn_cfg = PowerNetConfig { time_windows: 5, window: 7, channels: 4, seed: 1 };
    let ds = PowerNetDataset::build(
        &eval.prepared.grid,
        &eval.prepared.vectors,
        &eval.prepared.reports,
        &pn_cfg,
    );
    let mut net = PowerNet::new(pn_cfg);
    let losses = net.train(
        &ds,
        &eval.split.train,
        &PowerNetTrainConfig {
            epochs: 3,
            tiles_per_epoch: 200,
            batch_size: 16,
            learning_rate: 2e-3,
            seed: 2,
        },
    );
    assert!(losses.last().expect("epochs") <= &losses[0], "PowerNet failed to learn at all");

    // Whole-map inference: the one-shot model must beat the tile scan —
    // the architectural point of the paper.
    let idx = eval.test_indices[0];
    let grid = eval.prepared.grid.clone();
    let vector = eval.prepared.vectors[idx].clone();
    let t0 = Instant::now();
    let pn_map = net.predict_sample(&ds, idx);
    let pn_time = t0.elapsed();
    let t0 = Instant::now();
    let our_map = eval.predictor.predict(&grid, &vector);
    let our_time = t0.elapsed();
    assert_eq!(pn_map.shape(), our_map.shape());
    assert!(
        our_time < pn_time,
        "one-shot {:?} should beat tile scan {:?}",
        our_time,
        pn_time
    );
}

#[test]
fn dynamic_prediction_beats_static_shortcut() {
    // A tempting shortcut is to run static IR with each vector's peak
    // currents. On resonant designs this misreads the noise; the trained
    // dynamic predictor should be closer to ground truth on average.
    let cfg = ExperimentConfig::quick();
    let eval = EvaluatedDesign::evaluate(DesignPreset::D1, &cfg).expect("pipeline");
    let dc = StaticAnalysis::new(&eval.prepared.grid).expect("dc");

    let mut static_pairs = Vec::new();
    for &idx in &eval.test_indices {
        let v = &eval.prepared.vectors[idx];
        let peak: Vec<f64> = (0..v.load_count())
            .map(|l| (0..v.step_count()).map(|k| v.current(k, l)).fold(0.0, f64::max))
            .collect();
        let map = dc.droop_map(&peak).expect("solve");
        static_pairs.push((map, eval.prepared.reports[idx].worst_noise.clone()));
    }
    let static_stats = metrics::pooled_error_stats(&static_pairs);
    let model_stats = metrics::pooled_error_stats(&eval.test_pairs);
    assert!(
        model_stats.mean_ae < static_stats.mean_ae,
        "model {:.4}V should beat static-at-peak {:.4}V",
        model_stats.mean_ae,
        static_stats.mean_ae
    );
}
