//! Integration coverage for hierarchical trace spans and the run-analysis
//! pipeline: cross-thread span nesting in the JSONL sink, the Chrome-trace
//! exporter round trip, and the `pdn report` / `--trace` CLI end to end
//! (the last two drive the real binary in a subprocess).
//!
//! Telemetry is process-global, so the in-process tests serialize on
//! [`TEST_LOCK`]; this binary runs in its own process, keeping the global
//! state isolated from the rest of the suite.

use pdn_wnv::core::telemetry;
use pdn_wnv::eval::jsonl::{self, Json};
use pdn_wnv::eval::tracereport::TelemetryLog;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_path(stem: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pdn-tracing-{}-{stem}", std::process::id()))
}

/// Records a root span on the calling thread plus nested spans on worker
/// threads, and returns the parsed sink.
fn record_cross_thread_spans(stem: &str) -> TelemetryLog {
    telemetry::reset();
    let path = temp_path(stem);
    let _ = std::fs::remove_file(&path);
    telemetry::enable_with_sink(&path).expect("sink file");
    {
        let _root = telemetry::span("it.root");
        let handles: Vec<_> = (0..4u64)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut outer = telemetry::span("it.worker");
                    outer.field("worker", w);
                    for i in 0..8u64 {
                        let mut inner = telemetry::span("it.inner");
                        inner.field("i", i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
    }
    telemetry::flush();
    let text = std::fs::read_to_string(&path).expect("read sink");
    telemetry::reset();
    let _ = std::fs::remove_file(&path);
    TelemetryLog::parse_str(&text).expect("every sink line parses")
}

#[test]
fn spans_nest_consistently_across_worker_threads() {
    let _guard = lock();
    let log = record_cross_thread_spans("nest.jsonl");

    let roots: Vec<_> = log.spans.iter().filter(|s| s.name == "it.root").collect();
    let workers: Vec<_> = log.spans.iter().filter(|s| s.name == "it.worker").collect();
    let inners: Vec<_> = log.spans.iter().filter(|s| s.name == "it.inner").collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(workers.len(), 4);
    assert_eq!(inners.len(), 32);

    // The span stack is per-thread: worker spans are roots on their own
    // threads (no cross-thread parent), on four distinct thread tags, none
    // of them the main thread's.
    let mut worker_threads: Vec<u64> = workers.iter().map(|s| s.thread).collect();
    worker_threads.sort_unstable();
    worker_threads.dedup();
    assert_eq!(worker_threads.len(), 4, "worker thread tags collide");
    for w in &workers {
        assert_eq!(w.parent, None, "worker span leaked a cross-thread parent");
        assert_ne!(w.thread, roots[0].thread);
    }

    // Every inner span is parented to the worker span of its own thread,
    // and nests inside it in time.
    let by_id: BTreeMap<u64, &_> = workers.iter().map(|w| (w.id, *w)).collect();
    for inner in &inners {
        let parent = inner.parent.and_then(|p| by_id.get(&p)).unwrap_or_else(|| {
            panic!("inner span {} not parented to a worker span", inner.id)
        });
        assert_eq!(inner.thread, parent.thread, "parent link crossed threads");
        // start_us is reconstructed as end − duration, so each edge can be
        // off by a microsecond of truncation; allow that much slack.
        assert!(inner.start_us + 2 >= parent.start_us);
        assert!(inner.start_us + inner.dur_us <= parent.start_us + parent.dur_us + 2);
        assert!(inner.fields.get("i").and_then(Json::as_u64).is_some());
    }
}

#[test]
fn chrome_trace_round_trip_balances_begin_end_per_thread() {
    let _guard = lock();
    let log = record_cross_thread_spans("trace.jsonl");
    let trace = log.chrome_trace();

    let parsed = jsonl::parse(&trace).expect("trace.json is a single valid JSON document");
    let events = match parsed.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("missing traceEvents array: {other:?}"),
    };
    // Walk the event stream keeping a B/E stack per tid: every E must
    // close the most recent B of the same name, and nothing stays open.
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut begins = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
        match ph {
            "B" => {
                begins += 1;
                let name = ev.get("name").and_then(Json::as_str).expect("name");
                stacks.entry(tid).or_default().push(name.to_string());
            }
            "E" => {
                let name = ev.get("name").and_then(Json::as_str).expect("name");
                let top = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(top.as_deref(), Some(name), "unbalanced E on tid {tid}");
            }
            "M" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, log.spans.len(), "one B/E pair per span");
    assert!(stacks.values().all(Vec::is_empty), "unclosed B events: {stacks:?}");
}

#[test]
fn cli_simulate_then_report_round_trip() {
    let exe = env!("CARGO_BIN_EXE_pdn");
    let run_jsonl = temp_path("cli-run.jsonl");
    let report_md = temp_path("cli-report.md");
    let trace_json = temp_path("cli-trace.json");
    for p in [&run_jsonl, &report_md, &trace_json] {
        let _ = std::fs::remove_file(p);
    }

    let status = Command::new(exe)
        .args(["simulate", "--design", "D1", "--steps", "6", "--seed", "3"])
        .arg("--telemetry")
        .arg(&run_jsonl)
        .output()
        .expect("run pdn simulate");
    assert!(status.status.success(), "simulate failed: {status:?}");

    // The root `cli.simulate` span must cover the command wall clock
    // reported by the `cli.command` event (same code path, microseconds
    // apart — allow generous scheduling slack).
    let log = TelemetryLog::load(&run_jsonl).expect("parse run sink");
    let (command, seconds, ok) = log.command_event().expect("cli.command event");
    assert_eq!(command, "simulate");
    assert!(ok);
    let root = log.root_span_seconds().expect("root span");
    assert!(
        (root - seconds).abs() <= 0.05 + 0.2 * seconds,
        "root span {root:.4}s vs command wall clock {seconds:.4}s"
    );
    assert!(
        log.spans.iter().any(|s| s.name == "cli.stage.simulate"),
        "stage spans missing from the sink"
    );
    assert!(log.histograms.contains_key("sparse.cg.iterations_per_solve"));

    // `pdn report` against itself as baseline: report + trace written,
    // no regression flagged even under --strict.
    let status = Command::new(exe)
        .arg("report")
        .arg(&run_jsonl)
        .arg(&run_jsonl)
        .arg("--out")
        .arg(&report_md)
        .arg("--trace")
        .arg(&trace_json)
        .args(["--strict", "true"])
        .output()
        .expect("run pdn report");
    assert!(status.status.success(), "report failed: {status:?}");

    let md = std::fs::read_to_string(&report_md).expect("report.md");
    for needle in ["# pdn run report", "## Stage tree", "cli.simulate", "## Distributions"] {
        assert!(md.contains(needle), "report missing {needle:?}:\n{md}");
    }

    let trace = std::fs::read_to_string(&trace_json).expect("trace.json");
    let parsed = jsonl::parse(&trace).expect("valid Chrome-trace JSON");
    let events = match parsed.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("missing traceEvents array: {other:?}"),
    };
    let b = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("B")).count();
    let e = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("E")).count();
    assert_eq!(b, e, "unbalanced B/E events");
    assert_eq!(b, log.spans.len());

    for p in [&run_jsonl, &report_md, &trace_json] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn cli_report_strict_fails_on_a_regressed_stage() {
    let exe = env!("CARGO_BIN_EXE_pdn");
    let base_path = temp_path("diff-base.jsonl");
    let run_path = temp_path("diff-run.jsonl");

    // Identical shape, but the simulate stage is 3x slower in the run.
    let base = r#"{"ts_us":900000,"kind":"span","name":"cli.stage.simulate","span":2,"parent":1,"thread":1,"start_us":100,"dur_us":899900,"ok":true}
{"ts_us":1000000,"kind":"span","name":"cli.simulate","span":1,"parent":null,"thread":1,"start_us":0,"dur_us":1000000,"ok":true}
{"ts_us":1000001,"kind":"event","name":"cli.command","command":"simulate","seconds":1.0,"ok":true}
"#;
    let run = r#"{"ts_us":2700000,"kind":"span","name":"cli.stage.simulate","span":2,"parent":1,"thread":1,"start_us":100,"dur_us":2699900,"ok":true}
{"ts_us":2800000,"kind":"span","name":"cli.simulate","span":1,"parent":null,"thread":1,"start_us":0,"dur_us":2800000,"ok":true}
{"ts_us":2800001,"kind":"event","name":"cli.command","command":"simulate","seconds":2.8,"ok":true}
"#;
    std::fs::write(&base_path, base).expect("write baseline");
    std::fs::write(&run_path, run).expect("write run");

    // Without --strict the regression is reported but the exit is clean…
    let out = Command::new(exe)
        .arg("report")
        .arg(&run_path)
        .arg(&base_path)
        .output()
        .expect("run pdn report");
    assert!(out.status.success(), "non-strict report failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("⚠ slower"), "diff table did not flag the stage:\n{stdout}");

    // …with --strict it becomes a non-zero exit naming the stage.
    let out = Command::new(exe)
        .arg("report")
        .arg(&run_path)
        .arg(&base_path)
        .args(["--strict", "true"])
        .output()
        .expect("run pdn report --strict");
    assert!(!out.status.success(), "strict report should fail on a 3x stage");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cli.stage.simulate"), "stderr: {stderr}");

    for p in [&base_path, &run_path] {
        let _ = std::fs::remove_file(p);
    }
}
