//! Integration of Algorithm 1 with the rest of the pipeline.

use pdn_wnv::compress::spatial::tile_current_maps;
use pdn_wnv::compress::temporal::TemporalCompressor;
use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig, PreparedDesign};
use pdn_wnv::eval::metrics;
use pdn_wnv::grid::design::DesignPreset;

#[test]
fn compression_keeps_the_worst_stamp_of_real_traces() {
    let cfg = ExperimentConfig::quick();
    let prep = PreparedDesign::prepare(DesignPreset::D1, &cfg).expect("prepare");
    for (i, vector) in prep.vectors.iter().enumerate() {
        let totals = vector.totals();
        let peak = (0..totals.len())
            .max_by(|&a, &b| totals[a].partial_cmp(&totals[b]).expect("finite"))
            .expect("non-empty");
        for rate in [0.1, 0.3] {
            let out = TemporalCompressor::new(rate, 0.05).expect("valid").compress(&totals);
            assert!(out.kept.contains(&peak), "vector {i}, rate {rate}: peak stamp dropped");
        }
    }
}

#[test]
fn map_and_vector_compression_agree() {
    // Compressing the raw vector and compressing its tile maps must select
    // the same time stamps (S[k] equals the map sum by construction).
    let cfg = ExperimentConfig::quick();
    let prep = PreparedDesign::prepare(DesignPreset::D2, &cfg).expect("prepare");
    let vector = &prep.vectors[0];
    let maps = tile_current_maps(&prep.grid, vector);
    let comp = TemporalCompressor::new(0.3, 0.05).expect("valid");
    let (_, from_vector) = comp.compress_vector(vector);
    let (_, from_maps) = comp.compress_maps(&maps);
    assert_eq!(from_vector.kept, from_maps.kept);
}

#[test]
fn stronger_compression_is_not_more_accurate_than_none() {
    // Train at r = 0.15 and r = 1.0 on the same prepared data; the
    // uncompressed model sees strictly more information, so it should not
    // be substantially worse (and typically is better) — the Fig. 6 trend.
    let base = ExperimentConfig::quick();
    let prep_a = PreparedDesign::prepare(DesignPreset::D1, &base).expect("prepare");
    let low =
        EvaluatedDesign::evaluate_prepared(prep_a, &ExperimentConfig { compression_rate: 0.15, ..base });
    let prep_b = PreparedDesign::prepare(DesignPreset::D1, &base).expect("prepare");
    let full =
        EvaluatedDesign::evaluate_prepared(prep_b, &ExperimentConfig { compression_rate: 1.0, ..base });
    let low_re = metrics::pooled_error_stats(&low.test_pairs).mean_re;
    let full_re = metrics::pooled_error_stats(&full.test_pairs).mean_re;
    assert!(
        full_re < low_re * 1.5 + 0.05,
        "uncompressed ({full_re:.3}) much worse than r=0.15 ({low_re:.3})"
    );
}

#[test]
fn compressed_dataset_has_expected_length_everywhere() {
    let cfg = ExperimentConfig::quick();
    let eval = EvaluatedDesign::evaluate(DesignPreset::D1, &cfg).expect("pipeline");
    let expected = ((cfg.compression_rate * cfg.steps as f64).round() as usize).max(1);
    for s in &eval.dataset.samples {
        assert_eq!(s.currents.len(), expected);
    }
}
