//! Integration coverage for the telemetry subsystem: disabled-mode
//! no-op behaviour, the JSON-lines sink schema, and agreement between the
//! solver's own statistics and the counters the hot paths record.
//!
//! Telemetry is process-global, so every test serializes on [`TEST_LOCK`];
//! this binary runs in its own process, keeping the global state isolated
//! from the rest of the suite.

use pdn_wnv::core::telemetry;
use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::sim::transient::TransientSimulator;
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn disabled_telemetry_is_a_complete_no_op() {
    let _guard = lock();
    telemetry::reset();
    assert!(!telemetry::enabled());

    // None of these may record anything (or panic) while disabled.
    telemetry::counter_add("it.counter", 3);
    telemetry::gauge_set("it.gauge", 1.5);
    telemetry::observe("it.histogram", 0.25);
    telemetry::event("it.event", &[("k", 1u64.into())]);
    {
        let _t = telemetry::timed("it.timer");
    }

    telemetry::enable();
    assert_eq!(telemetry::counter_value("it.counter"), 0);
    assert_eq!(telemetry::gauge_value("it.gauge"), None);
    assert!(telemetry::histogram_summary("it.histogram").is_none());
    assert!(telemetry::histogram_summary("it.timer").is_none());
    telemetry::reset();
}

#[test]
fn disabled_hot_path_overhead_is_negligible() {
    let _guard = lock();
    telemetry::reset();

    // The entire disabled cost is one relaxed atomic load; a million guarded
    // counter bumps must complete in far under a second even on a loaded CI
    // box. This is a smoke bound, not a microbenchmark.
    let start = std::time::Instant::now();
    for i in 0..1_000_000u64 {
        telemetry::counter_add("it.overhead", i);
    }
    assert!(
        start.elapsed() < std::time::Duration::from_millis(500),
        "1e6 disabled counter_add calls took {:?}",
        start.elapsed()
    );

    // Disabled spans are equally inert: no allocation, no clock read, no
    // thread-local traffic — the same one-atomic-load bound applies with
    // the span instrumentation compiled in.
    let start = std::time::Instant::now();
    for _ in 0..1_000_000u64 {
        let _span = telemetry::span("it.overhead.span");
    }
    assert!(
        start.elapsed() < std::time::Duration::from_millis(500),
        "1e6 disabled span guards took {:?}",
        start.elapsed()
    );
}

#[test]
fn prometheus_exposition_matches_the_live_registry() {
    let _guard = lock();
    telemetry::reset();

    // Disabled exporter: empty output, no side effects.
    assert!(telemetry::prometheus_text().is_empty());

    telemetry::enable();
    telemetry::counter_add("it.prom.requests", 11);
    telemetry::gauge_set("it.prom.qps", 2.5);
    for v in [0.001, 0.004, 0.004, 2.0] {
        telemetry::observe("it.prom.latency_seconds", v);
    }
    let text = telemetry::prometheus_text();
    telemetry::reset();

    // The exposition agrees with the public registry accessors: the
    // counter sample carries the same value counter_value would report,
    // and the histogram _count matches the number of observations.
    assert!(text.contains("# TYPE it_prom_requests_total counter"), "{text}");
    assert!(text.contains("it_prom_requests_total 11"), "{text}");
    assert!(text.contains("# TYPE it_prom_qps gauge"), "{text}");
    assert!(text.contains("it_prom_qps 2.5e0"), "{text}");
    assert!(text.contains("# TYPE it_prom_latency_seconds histogram"), "{text}");
    assert!(text.contains("it_prom_latency_seconds_bucket{le=\"+Inf\"} 4"), "{text}");
    assert!(text.contains("it_prom_latency_seconds_count 4"), "{text}");

    // Structural invariant every scraper relies on: within a family,
    // bucket counts are cumulative (monotone non-decreasing in le).
    let counts: Vec<u64> = text
        .lines()
        .filter_map(|l| l.strip_prefix("it_prom_latency_seconds_bucket{le=\""))
        .map(|rest| rest.split_once("\"} ").unwrap().1.parse().unwrap())
        .collect();
    assert!(counts.len() >= 2, "{text}");
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "non-cumulative: {counts:?}");
}

#[test]
fn jsonl_sink_emits_one_well_formed_record_per_line() {
    let _guard = lock();
    telemetry::reset();
    let path = std::env::temp_dir().join(format!("pdn-telemetry-it-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    telemetry::enable_with_sink(&path).expect("sink file");

    telemetry::event("it.run", &[("design", "D1".into()), ("vectors", 4u64.into())]);
    telemetry::counter_add("it.solves", 7);
    telemetry::gauge_set("it.lr", 2.5e-3);
    telemetry::observe("it.residual", 1e-9);
    telemetry::observe("it.residual", f64::NAN); // non-finite → null, not bare NaN
    telemetry::write_summary_records();
    telemetry::flush();

    let text = std::fs::read_to_string(&path).expect("read sink");
    telemetry::reset();
    let _ = std::fs::remove_file(&path);

    let lines: Vec<&str> = text.lines().collect();
    // 1 event + summary records for 1 counter, 1 gauge, 1 histogram.
    assert_eq!(lines.len(), 4, "sink contents:\n{text}");
    for line in &lines {
        // Schema invariants every consumer relies on: one JSON object per
        // line, leading ts_us, a kind tag, and a name.
        assert!(line.starts_with("{\"ts_us\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
        assert!(line.contains("\"kind\":\""), "bad line: {line}");
        assert!(line.contains("\"name\":\""), "bad line: {line}");
        assert!(!line.contains("NaN"), "bare NaN leaked into JSON: {line}");
    }
    assert!(lines[0].contains("\"kind\":\"event\"") && lines[0].contains("\"design\":\"D1\""));
    assert!(text.contains("\"kind\":\"counter\"") && text.contains("\"value\":7"));
    assert!(text.contains("\"kind\":\"gauge\""));
    assert!(text.contains("\"kind\":\"histogram\"") && text.contains("\"count\":2"));
}

#[test]
fn jsonl_sink_lines_never_tear_under_concurrent_writers() {
    let _guard = lock();
    telemetry::reset();
    let path = std::env::temp_dir().join(format!("pdn-telemetry-mt-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    telemetry::enable_with_sink(&path).expect("sink file");

    // Hammer the sink from many threads at once with every record shape a
    // server produces: events with string payloads (the worst case for
    // interleaving — long, variable-length lines) and field-carrying spans.
    // The serve daemon writes from request workers and batcher threads
    // concurrently, so a torn line here would corrupt real traces.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 250;
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let payload = format!("thread-{t}-{}", "x".repeat(40 + t * 17));
                for i in 0..PER_THREAD {
                    telemetry::event(
                        "mt.event",
                        &[("thread", (t as u64).into()), ("i", (i as u64).into()),
                          ("payload", payload.as_str().into())],
                    );
                    let mut span = telemetry::span("mt.span");
                    span.field("thread", t as u64);
                    span.field("i", i as u64);
                    telemetry::counter_add("mt.counter", 1);
                    telemetry::observe("mt.histogram", i as f64);
                }
            });
        }
    });
    telemetry::write_summary_records();
    telemetry::flush();

    let text = std::fs::read_to_string(&path).expect("read sink");
    telemetry::reset();
    let _ = std::fs::remove_file(&path);

    // Every single line must be a complete, standalone JSON object — the
    // parser rejects torn or interleaved fragments outright.
    let mut events = 0usize;
    let mut spans = 0usize;
    for line in text.lines() {
        let parsed = pdn_wnv::eval::jsonl::parse(line)
            .unwrap_or_else(|e| panic!("torn or malformed sink line {line:?}: {e}"));
        assert!(parsed.get("ts_us").is_some(), "missing ts_us: {line}");
        match parsed.get("kind").and_then(|k| k.as_str()) {
            Some("event") if parsed.get("name").unwrap().as_str() == Some("mt.event") => {
                assert!(
                    parsed.get("payload").unwrap().as_str().unwrap().starts_with("thread-"),
                    "event payload torn: {line}"
                );
                events += 1;
            }
            Some("span") if parsed.get("name").unwrap().as_str() == Some("mt.span") => {
                spans += 1;
            }
            _ => {}
        }
    }
    assert_eq!(events, THREADS * PER_THREAD, "every event line intact and present");
    assert_eq!(spans, THREADS * PER_THREAD, "every span line intact and present");
    assert!(
        text.contains("\"name\":\"mt.counter\"") && text.contains("\"value\":2000"),
        "aggregated counter summary missing:\n{}",
        &text[..text.len().min(2000)]
    );
}

#[test]
fn solver_counters_match_transient_stats() {
    let _guard = lock();
    telemetry::reset();
    telemetry::enable();

    let grid = DesignPreset::D1.spec(DesignScale::Tiny).build(11).expect("grid");
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps: 30, ..Default::default() });
    let vector = gen.generate(0);
    let sim = TransientSimulator::new(&grid).expect("sim");
    let stats = sim.run_with(&vector, |_, _| {}).expect("run");

    // The instrumentation must agree exactly with the stats the solver
    // itself returns — drift here means a hot path stopped recording.
    assert_eq!(telemetry::counter_value("sim.transient.runs"), 1);
    assert_eq!(telemetry::counter_value("sim.transient.steps"), stats.steps as u64);
    assert_eq!(
        telemetry::counter_value("sim.transient.cg_iterations"),
        stats.cg_iterations as u64
    );
    // Per-step timing saw every step, and the preconditioner factored at
    // least once (DC solve + transient share the sparse layer).
    let steps = telemetry::histogram_summary("sim.transient.step_seconds").expect("timings");
    assert_eq!(steps.count, stats.steps as u64);
    assert!(telemetry::counter_value("sparse.ichol.factorizations") >= 1);
    assert!(telemetry::counter_value("sparse.cg.solves") >= stats.steps as u64);
    telemetry::reset();
}
