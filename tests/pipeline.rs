//! End-to-end integration: the complete paper flow on a miniature design.

use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig};
use pdn_wnv::eval::metrics;
use pdn_wnv::grid::design::DesignPreset;

#[test]
fn full_flow_build_simulate_train_predict() {
    let cfg = ExperimentConfig::quick();
    let eval = EvaluatedDesign::evaluate(DesignPreset::D1, &cfg).expect("pipeline");

    // The split covers every sample exactly once.
    assert_eq!(eval.split.total(), cfg.vectors);
    let mut all: Vec<usize> = eval
        .split
        .train
        .iter()
        .chain(&eval.split.val)
        .chain(&eval.split.test)
        .copied()
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), cfg.vectors);

    // Training descended and the loss history is complete.
    assert_eq!(eval.history.epochs.len(), cfg.train.epochs);
    let last = eval.history.final_train_loss().expect("non-empty history");
    assert!(last < eval.history.epochs[0].train_loss);

    // Test predictions are physical and in the right ballpark.
    let stats = metrics::pooled_error_stats(&eval.test_pairs);
    assert!(stats.mean_re < 0.6, "mean RE {:.3}", stats.mean_re);
    for (pred, truth) in &eval.test_pairs {
        assert!(pred.min() >= 0.0, "negative noise predicted");
        assert!(pred.max() < 1.0, "noise above vdd predicted");
        assert_eq!(pred.shape(), truth.shape());
    }

    // The headline claim holds even at miniature scale: prediction is
    // faster than simulation.
    assert!(eval.speedup() > 1.0, "speedup {:.1}", eval.speedup());
}

#[test]
fn predictor_beats_trivial_baselines() {
    // The trained CNN must beat (a) predicting zero and (b) predicting the
    // training-set mean map — otherwise learning did nothing useful.
    let mut cfg = ExperimentConfig::quick();
    // At Tiny scale the 40-epoch run is seed-sensitive; this training seed
    // converges with a comfortable margin over the train-mean baseline.
    cfg.train.seed = 36;
    let eval = EvaluatedDesign::evaluate(DesignPreset::D2, &cfg).expect("pipeline");

    let model_stats = metrics::pooled_error_stats(&eval.test_pairs);

    let zero_pairs: Vec<_> = eval
        .test_pairs
        .iter()
        .map(|(p, t)| (p.map(|_| 0.0), t.clone()))
        .collect();
    let zero_stats = metrics::pooled_error_stats(&zero_pairs);

    // Mean-of-train baseline.
    let (rows, cols) = eval.test_pairs[0].1.shape();
    let mut mean_map = pdn_wnv::core::map::TileMap::zeros(rows, cols);
    for &i in &eval.split.train {
        mean_map += &eval.dataset.samples[i].raw_worst_noise;
    }
    mean_map.map_inplace(|v| v / eval.split.train.len() as f64);
    let mean_pairs: Vec<_> =
        eval.test_pairs.iter().map(|(_, t)| (mean_map.clone(), t.clone())).collect();
    let mean_stats = metrics::pooled_error_stats(&mean_pairs);

    assert!(
        model_stats.mean_ae < zero_stats.mean_ae,
        "model {:.4} vs zero {:.4}",
        model_stats.mean_ae,
        zero_stats.mean_ae
    );
    assert!(
        model_stats.mean_ae < mean_stats.mean_ae * 1.2,
        "model {:.4} should be competitive with train-mean {:.4}",
        model_stats.mean_ae,
        mean_stats.mean_ae
    );
}
