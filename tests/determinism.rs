//! Reproducibility: the entire experiment pipeline is a pure function of
//! its seed.

use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig, PreparedDesign};
use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};

#[test]
fn grids_vectors_and_reports_reproduce() {
    let cfg = ExperimentConfig::quick();
    let a = PreparedDesign::prepare(DesignPreset::D1, &cfg).expect("prepare");
    let b = PreparedDesign::prepare(DesignPreset::D1, &cfg).expect("prepare");
    assert_eq!(a.grid.loads(), b.grid.loads());
    assert_eq!(a.vectors, b.vectors);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.worst_noise, rb.worst_noise);
        assert_eq!(ra.max_noise, rb.max_noise);
    }
}

#[test]
fn training_and_predictions_reproduce() {
    let cfg = ExperimentConfig::quick();
    let a = EvaluatedDesign::evaluate(DesignPreset::D1, &cfg).expect("pipeline");
    let b = EvaluatedDesign::evaluate(DesignPreset::D1, &cfg).expect("pipeline");
    assert_eq!(a.history, b.history, "training trajectories diverged");
    assert_eq!(a.split, b.split);
    for ((pa, ta), (pb, tb)) in a.test_pairs.iter().zip(&b.test_pairs) {
        assert_eq!(ta, tb);
        assert_eq!(pa, pb, "predictions diverged");
    }
}

#[test]
fn different_seeds_give_different_worlds() {
    let base = ExperimentConfig::quick();
    let other = ExperimentConfig { seed: base.seed + 1, ..base };
    let a = PreparedDesign::prepare(DesignPreset::D2, &base).expect("prepare");
    let b = PreparedDesign::prepare(DesignPreset::D2, &other).expect("prepare");
    assert_ne!(a.vectors, b.vectors);
    assert_ne!(a.grid.loads(), b.grid.loads());
}

#[test]
fn vector_groups_are_seed_extensible() {
    // Growing a group keeps the existing members identical — important for
    // incrementally extending a training corpus.
    let grid = DesignPreset::D1.spec(DesignScale::Tiny).build(1).expect("valid");
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps: 30, ..Default::default() });
    let small = gen.generate_group(3, 9);
    let large = gen.generate_group(6, 9);
    assert_eq!(&large[..3], &small[..]);
}
