//! Anatomy of dynamic noise: why the paper targets *dynamic* (not static)
//! analysis.
//!
//! ```text
//! cargo run --release --example resonance_anatomy
//! ```
//!
//! Reproduces the physics claim of the paper's introduction: dynamic noise
//! "is triggered by the resonance between package and die and hence results
//! in more severe noise". The example traces the die voltage through an
//! idle→burst event, prints the droop waveform, and compares three numbers:
//! the static IR drop at the sustained burst current, the dynamic worst
//! case, and the resulting overshoot factor.

use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::sim::static_ir::StaticAnalysis;
use pdn_wnv::sim::transient::TransientSimulator;
use pdn_wnv::vectors::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = DesignPreset::D1.spec(DesignScale::Tiny).build(11)?;
    let steps = 240;
    let vector = Scenario::IdleThenBurst.render(&grid, steps);

    // March the transient, tracking the worst droop at each step.
    let sim = TransientSimulator::new(&grid)?;
    let mut waveform = Vec::with_capacity(steps);
    sim.run_with(&vector, |_, volts| {
        let worst = volts.iter().fold(0.0f64, |w, v| w.max(1.0 - v));
        waveform.push(worst);
    })?;

    // Static reference: the DC droop at the burst's sustained mean current.
    let half = steps / 2;
    let mean_burst: Vec<f64> = (0..vector.load_count())
        .map(|l| (half..steps).map(|k| vector.current(k, l)).sum::<f64>() / half as f64)
        .collect();
    let dc = StaticAnalysis::new(&grid)?;
    let static_droop =
        dc.solve(&mean_burst)?.iter().fold(0.0f64, |w, v| w.max(1.0 - v));
    let dynamic_peak = waveform.iter().copied().fold(0.0, f64::max);

    println!("worst droop waveform (burst begins at step {half}):\n");
    let scale = 60.0 / dynamic_peak;
    for (k, w) in waveform.iter().enumerate().step_by(6) {
        let bar = "#".repeat((w * scale).round() as usize);
        println!("{k:>4} {:>7.1} mV |{bar}", w * 1e3);
    }
    println!(
        "\nstatic droop at sustained burst current: {:.1} mV",
        static_droop * 1e3
    );
    println!("dynamic worst-case droop:                {:.1} mV", dynamic_peak * 1e3);
    println!(
        "resonant overshoot factor:               {:.2}x",
        dynamic_peak / static_droop
    );
    println!("\nThis overshoot is what static IR-drop sign-off misses — and what");
    println!("the worst-case dynamic noise predictor is trained to capture.");
    Ok(())
}
