//! Train once, deploy everywhere: export a trained predictor to disk and
//! answer a sign-off query from the restored bundle.
//!
//! ```text
//! cargo run --release --example train_and_export
//! ```
//!
//! The bundle contains the model weights, the kernel configuration, the
//! design's distance tensor, the fitted normalizers and the compressor
//! settings — everything inference needs, so a sign-off team can train on a
//! beefy machine and query on laptops.

use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig};
use pdn_wnv::grid::design::DesignPreset;
use pdn_wnv::model::model::Predictor;
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::quick();
    println!("training on D3 ...");
    let mut eval = EvaluatedDesign::evaluate(DesignPreset::D3, &config)?;
    let grid = eval.prepared.grid.clone();

    let path = std::env::temp_dir().join("pdn_wnv_d3.predictor");
    eval.predictor.save_to(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("exported trained predictor to {} ({bytes} bytes)", path.display());

    // A "different machine": restore and answer a fresh query.
    let mut restored = Predictor::load_from(&path)?;
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps: 60, ..Default::default() });
    let query = gen.generate(424_242);

    let from_memory = eval.predictor.predict(&grid, &query);
    let from_disk = restored.predict(&grid, &query);
    assert_eq!(from_memory, from_disk, "restored predictor must agree bit for bit");

    println!(
        "restored predictor answers identically: worst predicted droop {:.1} mV",
        from_disk.max() * 1e3
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
