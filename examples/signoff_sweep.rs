//! Sign-off sweep: validate many workload scenarios against a noise budget.
//!
//! ```text
//! cargo run --release --example signoff_sweep
//! ```
//!
//! The paper's motivation (§1): WNV must be repeated for tens of test
//! vectors, which is what makes the commercial flow slow. This example runs
//! the canonical stress scenarios plus a batch of random vectors through
//! the simulator, reports which violate the 10 % noise budget, and shows
//! how the trained predictor answers the same queries at a fraction of the
//! cost.

use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig};
use pdn_wnv::grid::design::DesignPreset;
use pdn_wnv::sim::wnv::WnvRunner;
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};
use pdn_wnv::vectors::scenario::Scenario;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::quick();
    let steps = 80;

    println!("training the predictor on D2 ...");
    let mut eval = EvaluatedDesign::evaluate(DesignPreset::D2, &config)?;
    let grid = eval.prepared.grid.clone();
    let budget = grid.spec().hotspot_threshold();
    let runner = WnvRunner::new(&grid)?;

    // Named stress scenarios + extra random workloads not seen in training.
    let scenarios = vec![
        ("uniform-steady".to_string(), Scenario::UniformSteady.render(&grid, steps)),
        ("idle-then-burst".to_string(), Scenario::IdleThenBurst.render(&grid, steps)),
        ("resonant-burst".to_string(), Scenario::ResonantBurst { period: 40 }.render(&grid, steps)),
        ("power-ramp".to_string(), Scenario::PowerRamp.render(&grid, steps)),
    ];
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps, ..Default::default() });
    let randoms: Vec<(String, _)> =
        (0..4).map(|i| (format!("random-{i}"), gen.generate(1000 + i))).collect();

    println!(
        "\n{:<16} {:>12} {:>12} {:>10} {:>8}",
        "vector", "sim max (mV)", "CNN max (mV)", "verdict", "sim/CNN"
    );
    for (name, vector) in scenarios.into_iter().chain(randoms) {
        let t0 = Instant::now();
        let report = runner.run(&vector)?;
        let sim_time = t0.elapsed();
        let t0 = Instant::now();
        let predicted = eval.predictor.predict(&grid, &vector);
        let cnn_time = t0.elapsed();
        let verdict = if report.max_noise > budget { "VIOLATES" } else { "ok" };
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>10} {:>7.0}x",
            name,
            report.max_noise.to_millivolts(),
            predicted.max() * 1e3,
            verdict,
            sim_time.as_secs_f64() / cnn_time.as_secs_f64().max(1e-9),
        );
    }
    println!("\nnoise budget: {:.0} mV (10% of vdd)", budget.to_millivolts());
    Ok(())
}
