//! Training anatomy: watch the three-subnet model learn, then dissect its
//! errors.
//!
//! ```text
//! cargo run --release --example train_and_analyze
//! ```
//!
//! Builds the dataset by hand (rather than through the harness) so every
//! stage of the paper's flow is visible: simulation → spatial/temporal
//! compression → feature extraction → expansion split → training curve →
//! per-tile error analysis.

use pdn_wnv::compress::temporal::TemporalCompressor;
use pdn_wnv::eval::metrics;
use pdn_wnv::features::dataset::Dataset;
use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::model::model::{ModelConfig, Predictor, WnvModel};
use pdn_wnv::model::trainer::{TrainConfig, Trainer};
use pdn_wnv::sim::wnv::WnvRunner;
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate ground truth for a vector group.
    let grid = DesignPreset::D3.spec(DesignScale::Tiny).build(5)?;
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps: 80, ..Default::default() });
    let vectors = gen.generate_group(12, 77);
    let runner = WnvRunner::new(&grid)?;
    println!("simulating {} vectors on {} ({} nodes) ...", vectors.len(), grid.spec().name(), grid.node_count());
    let reports = runner.run_group(&vectors)?;

    // 2. Compress and featurize (Algorithm 1 at the paper's knee, r = 0.3).
    let compressor = TemporalCompressor::new(0.3, 0.05)?;
    let dataset = Dataset::build(&grid, &vectors, &reports, Some(&compressor));
    let split = dataset.split(0.6, 1);
    println!(
        "dataset: {} samples -> {} train / {} val / {} test (expansion split)",
        dataset.len(),
        split.train.len(),
        split.val.len(),
        split.test.len()
    );

    // 3. Train with the paper's architecture (C1=C2=8, C3=16).
    let mut model = WnvModel::new(grid.bumps().len(), ModelConfig::default(), 9);
    let trainer = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 4,
        learning_rate: 3e-3,
        seed: 1,
        lr_decay: 0.98,
    });
    let history = trainer.train(&mut model, &dataset, &split);
    println!("\ntraining curve (L1 per sample):");
    for (e, stats) in history.epochs.iter().enumerate().step_by(5) {
        println!("  epoch {:>3}: train {:>8.3}  val {:>8.3}", e, stats.train_loss, stats.val_loss);
    }

    // 4. Analyze the test predictions.
    let mut predictor = Predictor::new(model, &dataset, Some(compressor));
    let pairs: Vec<_> = split
        .test
        .iter()
        .map(|&i| (predictor.predict(&grid, &vectors[i]), reports[i].worst_noise.clone()))
        .collect();
    let stats = metrics::pooled_error_stats(&pairs);
    println!("\ntest accuracy: {stats}");
    let thr = grid.spec().hotspot_threshold();
    println!(
        "hotspot AUC {:.3}, missing rate {:.2}%",
        metrics::pooled_auc(&pairs, thr),
        metrics::pooled_missing_rate(&pairs, thr) * 100.0
    );
    Ok(())
}
