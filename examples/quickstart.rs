//! Quickstart: simulate a design, train the predictor, compare one map.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the complete flow of the paper in ~40 lines: build a PDN, run
//! the ground-truth simulator over a group of random test vectors, train
//! the three-subnet CNN, and predict the worst-case noise map of an unseen
//! vector.

use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig};
use pdn_wnv::eval::metrics;
use pdn_wnv::eval::render::ascii_side_by_side;
use pdn_wnv::grid::design::DesignPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The quick configuration runs in seconds on a laptop; swap for
    // `ExperimentConfig::ci()` to reproduce the reported numbers.
    let config = ExperimentConfig::quick();

    println!("building D1, simulating {} vectors, training ...", config.vectors);
    let eval = EvaluatedDesign::evaluate(DesignPreset::D1, &config)?;

    println!(
        "simulator: {:.3}s/vector   predictor: {:.4}s/vector   speedup: {:.0}x",
        eval.prepared.sim_time_per_vector.as_secs_f64(),
        eval.predict_time_per_vector.as_secs_f64(),
        eval.speedup()
    );

    let stats = metrics::pooled_error_stats(&eval.test_pairs);
    println!("test-set accuracy: {stats}");

    let (pred, truth) = &eval.test_pairs[0];
    println!("\nworst-case noise map of the first unseen vector:");
    println!("{}", ascii_side_by_side(truth, pred, "simulated (ground truth)", "CNN prediction"));
    println!(
        "hotspot missing rate at the 10% threshold: {:.2}%",
        metrics::pooled_missing_rate(
            &eval.test_pairs,
            eval.prepared.grid.spec().hotspot_threshold()
        ) * 100.0
    );
    Ok(())
}
