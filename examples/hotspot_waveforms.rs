//! Hotspot forensics: probe the worst tiles and export their droop
//! waveforms plus the design netlist for external cross-checking.
//!
//! ```text
//! cargo run --release --example hotspot_waveforms
//! ```
//!
//! After WNV flags hotspots, a designer wants the time-domain story at
//! those tiles — when the droop peaks, how it rings, how the neighbors
//! behave. This example runs WNV, plants probes on the three worst tiles,
//! records their waveforms, and writes both the waveform CSV and a SPICE
//! deck of the design so the result can be reproduced in any external
//! simulator.

use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::grid::netlist;
use pdn_wnv::sim::probe::ProbeSet;
use pdn_wnv::sim::transient::TransientSimulator;
use pdn_wnv::sim::wnv::WnvRunner;
use pdn_wnv::vectors::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = DesignPreset::D3.spec(DesignScale::Tiny).build(9)?;
    let vector = Scenario::ClockGatingStorm { period: 60 }.render(&grid, 240);

    // 1. WNV pass: find the hotspots.
    let runner = WnvRunner::new(&grid)?;
    let report = runner.run(&vector)?;
    let thr = grid.spec().hotspot_threshold();
    println!(
        "WNV: max droop {:.1} mV, {} hotspot tiles above {:.0} mV",
        report.max_noise.to_millivolts(),
        report.hotspots(thr).len(),
        thr.to_millivolts()
    );

    // 2. Probe the three worst tiles and re-run with waveform recording.
    let probes = ProbeSet::at_hotspots(&grid, &report.worst_noise, report.worst_noise.mean(), 3);
    let sim = TransientSimulator::new(&grid)?;
    let trace = probes.record(&sim, &vector)?;
    for p in 0..trace.tiles.len() {
        println!(
            "probe {:?}: peak {:.1} mV at t = {:.2} ns",
            trace.tiles[p],
            trace.peak(p) * 1e3,
            trace.peak_time(p) as f64 * trace.dt * 1e9
        );
    }

    // 3. Export artifacts.
    let dir = std::env::temp_dir().join("pdn_hotspot_waveforms");
    std::fs::create_dir_all(&dir)?;
    let wave_path = dir.join("hotspot_waveforms.csv");
    let mut f = std::fs::File::create(&wave_path)?;
    trace.write_csv(&mut f)?;
    let deck_path = dir.join("design.sp");
    netlist::write_spice_file(&grid, &deck_path)?;
    println!("\nwaveforms: {}", wave_path.display());
    println!("SPICE deck: {}", deck_path.display());
    Ok(())
}
