//! Temporal-compression study: Algorithm 1 on a real current trace.
//!
//! ```text
//! cargo run --release --example compression_study
//! ```
//!
//! Shows what the paper's Fig. 6 measures from the inside: how Algorithm 1
//! picks its split between quiet and busy time stamps, how well the kept
//! subset preserves the `μ+3σ` statistic at each rate, and that the
//! worst-case stamp always survives.

use pdn_wnv::compress::spatial::tile_current_maps;
use pdn_wnv::compress::temporal::TemporalCompressor;
use pdn_wnv::grid::design::{DesignPreset, DesignScale};
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = DesignPreset::D1.spec(DesignScale::Tiny).build(7)?;
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps: 400, ..Default::default() });
    let vector = gen.generate(3);
    let totals = vector.totals();
    let peak_idx = (0..totals.len())
        .max_by(|&a, &b| totals[a].partial_cmp(&totals[b]).expect("finite"))
        .expect("non-empty");

    println!("trace: {} stamps, peak total {:.1} mA at stamp {}", totals.len(), totals[peak_idx] * 1e3, peak_idx);
    println!(
        "original mu+3sigma of totals: {:.2} mA\n",
        pdn_wnv::core::stats::mu_plus_3_sigma(&totals) * 1e3
    );

    println!(
        "{:>5} {:>7} {:>10} {:>14} {:>12} {:>10}",
        "rate", "kept", "r0 picked", "mu+3s error", "peak kept?", "quiet kept"
    );
    for rate in [0.05, 0.1, 0.2, 0.3, 0.5, 0.8] {
        let compressor = TemporalCompressor::new(rate, 0.02)?;
        let outcome = compressor.compress(&totals);
        let quiet = outcome
            .kept
            .iter()
            .filter(|&&k| totals[k] < 0.1 * totals[peak_idx])
            .count();
        println!(
            "{:>5.2} {:>7} {:>10.2} {:>12.2} mA {:>12} {:>10}",
            rate,
            outcome.kept.len(),
            outcome.selected_r0,
            outcome.statistic_error * 1e3,
            outcome.kept.contains(&peak_idx),
            quiet,
        );
    }

    // The same algorithm applied to the tile current maps (the paper's
    // actual input form).
    let maps = tile_current_maps(&grid, &vector);
    let compressor = TemporalCompressor::new(0.3, 0.05)?;
    let (kept_maps, outcome) = compressor.compress_maps(&maps);
    println!(
        "\nmap-form compression at r=0.3: {} of {} maps kept (r0 = {:.2})",
        kept_maps.len(),
        maps.len(),
        outcome.selected_r0
    );
    Ok(())
}
