//! Hotspot screening: use the trained CNN as a fast pre-filter in front of
//! the simulator.
//!
//! ```text
//! cargo run --release --example hotspot_screening
//! ```
//!
//! A practical deployment pattern implied by the paper: run the fast
//! predictor over a large batch of candidate vectors, send only the
//! predicted-worst offenders to full simulation, and confirm that the
//! screen does not miss true violations.

use pdn_wnv::eval::harness::{EvaluatedDesign, ExperimentConfig};
use pdn_wnv::grid::design::DesignPreset;
use pdn_wnv::sim::wnv::WnvRunner;
use pdn_wnv::vectors::generator::{GeneratorConfig, VectorGenerator};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::quick();
    println!("training the predictor on D4 ...");
    let mut eval = EvaluatedDesign::evaluate(DesignPreset::D4, &config)?;
    let grid = eval.prepared.grid.clone();

    // Screen a batch of fresh candidate vectors with the CNN.
    let candidates = 16usize;
    let gen = VectorGenerator::new(&grid, GeneratorConfig { steps: 60, ..Default::default() });
    let batch: Vec<_> = (0..candidates as u64).map(|i| gen.generate(5_000 + i)).collect();

    let t0 = Instant::now();
    let mut scored: Vec<(usize, f64)> = batch
        .iter()
        .enumerate()
        .map(|(i, v)| (i, eval.predictor.predict(&grid, v).max()))
        .collect();
    let screen_time = t0.elapsed();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    // Simulate only the top quartile.
    let shortlist = &scored[..candidates / 4];
    let runner = WnvRunner::new(&grid)?;
    let t0 = Instant::now();
    println!("\npredicted-worst shortlist sent to full simulation:");
    let mut worst = (0usize, 0.0f64);
    for &(idx, predicted) in shortlist {
        let report = runner.run(&batch[idx])?;
        println!(
            "  vector {:>2}: predicted {:.1} mV, simulated {:.1} mV",
            idx,
            predicted * 1e3,
            report.max_noise.to_millivolts()
        );
        if report.max_noise.0 > worst.1 {
            worst = (idx, report.max_noise.0);
        }
    }
    let confirm_time = t0.elapsed();

    // Cross-check: simulate everything to verify the screen found the true
    // worst vector.
    let t0 = Instant::now();
    let mut true_worst = (0usize, 0.0f64);
    for (idx, v) in batch.iter().enumerate() {
        let r = runner.run(v)?;
        if r.max_noise.0 > true_worst.1 {
            true_worst = (idx, r.max_noise.0);
        }
    }
    let brute_time = t0.elapsed();

    println!("\nscreen found vector {} at {:.1} mV; exhaustive search found vector {} at {:.1} mV", worst.0, worst.1 * 1e3, true_worst.0, true_worst.1 * 1e3);
    println!(
        "cost: screen {:.2}s + confirm {:.2}s = {:.2}s, vs brute force {:.2}s",
        screen_time.as_secs_f64(),
        confirm_time.as_secs_f64(),
        screen_time.as_secs_f64() + confirm_time.as_secs_f64(),
        brute_time.as_secs_f64()
    );
    Ok(())
}
